//! `magik` — command-line completeness reasoning.
//!
//! Reads a document of `compl`/`query`/`fact` items (see `magik-parser`)
//! and answers completeness questions about its queries:
//!
//! ```text
//! magik check <file>              is each query complete?
//! magik generalize <file>         minimal complete generalization per query
//! magik specialize <file> [-k N] [--naive]
//!                                 k-MCSs per query (default k = 0)
//! magik eval <file>               evaluate each query over the facts
//! magik explain <file>            statement-set diagnostics
//! magik explain-plan <file>       compiled execution plan per query
//! magik serve [--addr A] [--workers N] [--threads N]
//!             [--data-dir DIR] [--fsync MODE] [file]
//!                                 TCP completeness service
//! magik replicate --from A --data-dir DIR [--addr A]
//!                                 follow a primary's WAL; serve read-only
//! magik recover --data-dir DIR [--verify]
//!                                 inspect (and optionally verify) a
//!                                 durable data directory
//! ```
//!
//! `<file>` may be `-` for stdin. Exit code 0 on success, 1 on usage
//! errors, 2 on parse errors (3 for denied `analyze` diagnostics).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::io::Read;
use std::process::ExitCode;

mod repl;

use magik::{
    allow_directives, analyze_document, answers, cert_statements, certify, check_certificate,
    classify_answers, count_bounds, counterexample, explain_check, explain_code, explain_json,
    explain_text, filter_suppressed, fix_source, initial_sync, is_complete, is_complete_under,
    k_mcs, lint, mcg_under, mcg_with_stats, parse_document, publishable_counts,
    render_counterexample, render_explanation_with_locations, render_json, render_report,
    render_sarif, run_replica, semantics::IncompleteDatabase, tc_apply, Baseline, Certificate,
    Code, CompiledQuery, Diagnostic, DisplayWith, Document, DurabilityOptions, Engine, ExecStats,
    FsyncPolicy, KMcsEngine, KMcsOptions, LineIndex, RecoveryReport, ReplicaStatus, SarifFile,
    Server, ServerConfig, Severity, SourceFile, TcStatement, Vocabulary,
};

const USAGE: &str = "usage: magik <check|generalize|specialize|eval|explain> <file> [options]

commands:
  check      <file> [--why] [--format text|json]
                                    report COMPLETE/INCOMPLETE per query;
                                    --why attaches a machine-checkable
                                    certificate (witness derivations, or a
                                    counterexample plus a minimal repair),
                                    validated by magik-cert, as text or
                                    JSON per --format
  generalize <file>                 compute the MCG of each query
  specialize <file> [-k N] [--naive]
                                    compute the k-MCSs of each query
  eval       <file>                 evaluate each query over the `fact` items
  bounds     <file> [-k N]          certain answers, count bounds and
                                    publishable partial counts per query
  why        <file>                 per-atom completeness explanation and,
                                    for incomplete queries, a counterexample
  explain    <file>                 statement-set diagnostics and lints
  analyze    <file|dir>... [--format text|json|sarif]
             [--deny infos|warnings|errors] [--fix]
             [--baseline F] [--write-baseline F] [--explain M0xx]
                                    static analysis: span-annotated M0xx
                                    diagnostics for statements, queries,
                                    facts and the Datalog encoding, over
                                    any number of files (directories
                                    recurse into *.magik); exit 3 if any
                                    kept diagnostic reaches the --deny
                                    level (default: errors); --fix applies
                                    machine-applicable suggestions in
                                    place; `% magik: allow(M0xx)` comments
                                    suppress findings; --baseline filters
                                    accepted findings, --write-baseline
                                    records them; --explain prints the
                                    catalogue entry for one code
  simulate   <file>                 treat facts as the ideal state and show
                                    which query answers are at risk
  explain-plan <file> [--format text|json]
                                    compile each query against the `fact`
                                    items, execute it, and print the chosen
                                    plan: atom order, index probes, and
                                    per-op runtime counters
  repl       [file]                 interactive session (optionally seeded
                                    from a file)
  serve      [--addr HOST:PORT] [--workers N] [--threads N]
             [--data-dir DIR] [--fsync always|never|interval[:MS]]
             [--checkpoint-every N] [--segment-bytes N] [file]
                                    serve the line protocol over TCP
                                    (default 127.0.0.1:7171, 4 workers),
                                    optionally preloading a document;
                                    --threads sizes the reasoning pool
                                    (default: MAGIK_THREADS, else the
                                    machine's available parallelism);
                                    --data-dir makes the session durable:
                                    mutations are write-ahead logged to
                                    DIR (fsynced per --fsync, default
                                    `always`), checkpointed every N
                                    logged ops (default 1024, 0 disables),
                                    and recovered on restart
  replicate  --from HOST:PORT --data-dir DIR [--addr HOST:PORT]
             [--workers N] [--threads N] [--fsync always|never|interval[:MS]]
             [--checkpoint-every N] [--segment-bytes N]
                                    follow a primary's write-ahead log and
                                    serve its session read-only (default
                                    addr 127.0.0.1:7172): bootstrap from
                                    the primary's checkpoint if the local
                                    DIR is behind its retained log, replay
                                    shipped ops through normal recovery,
                                    and reconnect with backoff if the
                                    primary goes away; the `replication`
                                    request reports epoch lag
  recover    --data-dir DIR [--verify]
                                    report what crash recovery would use
                                    from DIR (checkpoint, WAL tail, torn
                                    bytes) without modifying it; with
                                    --verify, additionally replay the
                                    tail into a scratch engine and check
                                    every op re-derives its logged epochs

<file> may be `-` to read from stdin.";

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
    }
}

fn load(path: &str) -> Result<(Vocabulary, Document, String), ExitCode> {
    let src = match read_input(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("magik: cannot read `{path}`: {e}");
            return Err(ExitCode::from(1));
        }
    };
    let mut vocab = Vocabulary::new();
    match parse_document(&src, &mut vocab) {
        Ok(doc) => Ok((vocab, doc, src)),
        Err(e) => {
            eprintln!("magik: {path}:{e}");
            Err(ExitCode::from(2))
        }
    }
}

/// Maps a statement index to a short, path-free source citation
/// (`line N`) through the parser's span table.
fn statement_location(doc: &Document, index: &LineIndex, statement: usize) -> Option<String> {
    doc.spans.statements.get(statement).map(|s| {
        let (line, _) = index.line_col(s.item.start);
        format!("line {line}")
    })
}

fn cmd_check(vocab: &Vocabulary, doc: &Document) {
    for q in &doc.queries {
        let complete = if doc.constraints.is_empty() {
            is_complete(q, &doc.tcs)
        } else {
            is_complete_under(q, &doc.tcs, &doc.constraints)
        };
        let verdict = if complete { "COMPLETE" } else { "INCOMPLETE" };
        println!("{verdict}: {}", q.display(vocab));
    }
}

/// `check --why`: proof-carrying verdicts. Emits a certificate per query
/// (witness for complete, counterexample + minimal repair for
/// incomplete), self-validates it with the independent `magik-cert`
/// checker, and renders it as text or JSON.
fn cmd_check_why(vocab: &Vocabulary, doc: &Document, src: &str, json: bool) {
    let index = LineIndex::new(src);
    if json {
        print!("{}", check_why_json(vocab, doc, &index));
        return;
    }
    let statements = cert_statements(&doc.tcs);
    for q in &doc.queries {
        let cert = certify(q, &doc.tcs);
        let valid = check_certificate(q, &statements, &cert).is_ok();
        let e = explain_check(q, &doc.tcs);
        print!(
            "{}",
            render_explanation_with_locations(q, &doc.tcs, &e, vocab, |i| statement_location(
                doc, &index, i
            ))
        );
        if let Certificate::Incomplete { repair, .. } = &cert {
            if let Some(db) = counterexample(q, &doc.tcs) {
                print!("{}", render_counterexample(q, &db, vocab));
            }
            if let Some(r) = repair {
                let adds: Vec<String> = r
                    .additions
                    .iter()
                    .map(|a| {
                        TcStatement::new(a.clone(), vec![])
                            .display(vocab)
                            .to_string()
                    })
                    .collect();
                println!("  minimal repair: add {}", adds.join(", add "));
                println!("    (removing any one suggested statement leaves the query incomplete)");
            }
        }
        println!(
            "  certificate: {}",
            if valid {
                "valid (checked by magik-cert)"
            } else {
                "INVALID"
            }
        );
        println!();
    }
}

/// Renders the `check --why` certificates as a JSON array, one object
/// per query.
fn check_why_json(vocab: &Vocabulary, doc: &Document, index: &LineIndex) -> String {
    use std::fmt::Write as _;
    let statements = cert_statements(&doc.tcs);
    let mut out = String::from("[");
    for (qi, q) in doc.queries.iter().enumerate() {
        if qi > 0 {
            out.push(',');
        }
        let cert = certify(q, &doc.tcs);
        let valid = check_certificate(q, &statements, &cert).is_ok();
        let e = explain_check(q, &doc.tcs);
        let verdict = match &cert {
            Certificate::Complete(_) => "complete",
            Certificate::Incomplete { .. } => "incomplete",
        };
        let _ = write!(
            out,
            "\n  {{\"query\":\"{}\",\"verdict\":\"{verdict}\",\"certificate_valid\":{valid},\"atoms\":[",
            cli_json_escape(&q.display(vocab).to_string())
        );
        for (ai, (atom, witness)) in e.atoms.iter().enumerate() {
            if ai > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"atom\":\"{}\"",
                cli_json_escape(&atom.display(vocab).to_string())
            );
            match witness {
                Some(w) => {
                    let _ = write!(out, ",\"guaranteed\":true,\"statement\":{}", w.statement);
                    if let Some(loc) = statement_location(doc, index, w.statement) {
                        let _ = write!(out, ",\"location\":\"{}\"", cli_json_escape(&loc));
                    }
                }
                None => out.push_str(",\"guaranteed\":false"),
            }
            out.push('}');
        }
        out.push(']');
        match &cert {
            Certificate::Complete(c) => {
                out.push_str(",\"witness\":[");
                for (i, (var, cst)) in c.theta.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"var\":\"{}\",\"value\":\"{}\"}}",
                        cli_json_escape(&var.display(vocab).to_string()),
                        cli_json_escape(&cst.display(vocab).to_string())
                    );
                }
                out.push(']');
            }
            Certificate::Incomplete {
                counterexample: ce,
                repair,
            } => {
                let facts = |fs: &mut dyn Iterator<Item = magik::Fact>| {
                    let rendered: Vec<String> = fs
                        .map(|f| {
                            format!(
                                "\"{}\"",
                                cli_json_escape(
                                    &magik::relalg::unfreeze_fact(&f).display(vocab).to_string()
                                )
                            )
                        })
                        .collect();
                    rendered.join(",")
                };
                let ideal = magik::canonical_database(q);
                let _ = write!(
                    out,
                    ",\"counterexample\":{{\"ideal\":[{}],\"available\":[{}],\"lost\":\"{}\"}}",
                    facts(&mut ideal.iter_facts()),
                    facts(&mut ce.available.iter().cloned()),
                    cli_json_escape(&ce.target.display(vocab).to_string())
                );
                if let Some(r) = repair {
                    out.push_str(",\"repair\":[");
                    for (i, a) in r.additions.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "\"{}\"",
                            cli_json_escape(
                                &TcStatement::new(a.clone(), vec![])
                                    .display(vocab)
                                    .to_string()
                            )
                        );
                    }
                    out.push(']');
                }
            }
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn cmd_generalize(vocab: &Vocabulary, doc: &Document) {
    for q in &doc.queries {
        let result = if doc.constraints.is_empty() {
            mcg_with_stats(q, &doc.tcs).0
        } else {
            mcg_under(q, &doc.tcs, &doc.constraints)
        };
        match result {
            Some(m) if m.same_as(q) => {
                println!("already complete: {}", q.display(vocab));
            }
            Some(m) => {
                println!(
                    "MCG: {}   ({} of {} atoms kept)",
                    m.display(vocab),
                    m.size(),
                    q.size()
                );
            }
            None => {
                println!("no complete generalization: {}", q.display(vocab));
            }
        }
    }
}

fn cmd_specialize(vocab: &mut Vocabulary, doc: &Document, k: usize, naive: bool) {
    let engine = if naive {
        KMcsEngine::Naive
    } else {
        KMcsEngine::Optimized
    };
    for q in &doc.queries {
        println!("query: {}", q.display(vocab));
        let outcome = k_mcs(
            q,
            &doc.tcs,
            vocab,
            KMcsOptions {
                engine,
                ..KMcsOptions::new(k)
            },
        );
        if outcome.queries.is_empty() {
            println!("  no complete specialization within {} atoms", q.size() + k);
        }
        for m in &outcome.queries {
            println!("  {k}-MCS: {}", m.display(vocab));
        }
        println!(
            "  [{} extensions, {} unification calls, {} candidates{}]",
            outcome.stats.extensions,
            outcome.stats.unify_calls,
            outcome.stats.candidates,
            if outcome.complete_search {
                ""
            } else {
                ", SEARCH TRUNCATED"
            }
        );
    }
}

fn cmd_eval(vocab: &Vocabulary, doc: &Document) {
    for q in &doc.queries {
        match answers(q, &doc.facts) {
            Ok(ans) => {
                println!("{} answers for {}", ans.len(), q.display(vocab));
                for tuple in ans {
                    println!("  {}", tuple.display(vocab));
                }
            }
            Err(e) => println!("cannot evaluate {}: {e}", q.display(vocab)),
        }
    }
}

fn cmd_bounds(vocab: &mut Vocabulary, doc: &Document, k: usize) {
    for q in &doc.queries {
        println!("query: {}", q.display(vocab));
        match classify_answers(q, &doc.tcs, &doc.facts) {
            Ok(report) => {
                println!("  certain answers ({}):", report.certain.len());
                for t in &report.certain {
                    println!("    {}", t.display(vocab));
                }
                match &report.possible {
                    Some(p) if report.exact => {
                        debug_assert!(p.is_empty());
                        println!("  query is complete: the certain answers are all answers");
                    }
                    Some(p) => {
                        println!("  possible further answers ({}):", p.len());
                        for t in p {
                            println!("    {}", t.display(vocab));
                        }
                    }
                    None => println!("  possible further answers: unbounded (no MCG)"),
                }
            }
            Err(e) => println!("  cannot evaluate: {e}"),
        }
        match count_bounds(q, &doc.tcs, &doc.facts) {
            Ok(b) => match b.upper {
                Some(u) if b.exact => println!("  ideal answer count: exactly {u}"),
                Some(u) => println!("  ideal answer count: between {} and {u}", b.lower),
                None => println!("  ideal answer count: at least {}", b.lower),
            },
            Err(e) => println!("  cannot bound: {e}"),
        }
        match publishable_counts(q, &doc.tcs, vocab, &doc.facts, k) {
            Ok(rows) if rows.is_empty() => {
                println!(
                    "  no publishable partial statistics within {} atoms",
                    q.size() + k
                );
            }
            Ok(rows) => {
                println!("  publishable partial statistics (k = {k}):");
                for row in rows {
                    println!("    |{}| = {}", row.query.display(vocab), row.count);
                }
            }
            Err(e) => println!("  cannot specialize: {e}"),
        }
    }
}

fn cmd_why(vocab: &Vocabulary, doc: &Document, src: &str) {
    let index = LineIndex::new(src);
    for q in &doc.queries {
        let e = explain_check(q, &doc.tcs);
        print!(
            "{}",
            render_explanation_with_locations(q, &doc.tcs, &e, vocab, |i| statement_location(
                doc, &index, i
            ))
        );
        if !e.complete {
            if let Some(db) = counterexample(q, &doc.tcs) {
                print!("{}", render_counterexample(q, &db, vocab));
            }
        }
        println!();
    }
}

fn cmd_explain(vocab: &Vocabulary, doc: &Document) {
    println!("{} statement(s):", doc.tcs.len());
    for c in doc.tcs.statements() {
        println!("  {}", c.display(vocab));
    }
    if !doc.constraints.is_empty() {
        println!(
            "{} finite-domain constraint(s), {} key(s):",
            doc.constraints.domains().len(),
            doc.constraints.keys().len()
        );
        for d in doc.constraints.domains() {
            println!("  {}", d.display(vocab));
        }
        for k in doc.constraints.keys() {
            println!("  {}", k.display(vocab));
        }
        if let Err(v2) = doc.constraints.check_instance(&doc.facts) {
            println!(
                "  WARNING: fact violates domain (column {} of a {} fact)",
                v2.column,
                vocab.pred_name(v2.fact.pred)
            );
        }
        for k in doc.constraints.keys() {
            if let Err(v2) = k.check_instance(&doc.facts) {
                println!(
                    "  WARNING: facts violate {} ({} vs {})",
                    k.display(vocab),
                    v2.facts.0.display(vocab),
                    v2.facts.1.display(vocab)
                );
            }
        }
    }
    let sigma: Vec<&str> = doc
        .tcs
        .signature()
        .into_iter()
        .map(|p| vocab.pred_name(p))
        .collect();
    println!("signature: {{{}}}", sigma.join(", "));
    println!(
        "dependency graph: {}",
        if doc.tcs.is_acyclic() {
            "acyclic (MCSs have bounded size)"
        } else {
            "cyclic (maximal complete specializations may not exist; use bounded k-MCS)"
        }
    );
    for q in &doc.queries {
        match doc.tcs.mcs_size_bound(q) {
            Some(bound) => println!(
                "MCS size bound for {}: {bound} atoms (Theorem 18)",
                q.display(vocab)
            ),
            None => println!("MCS size bound for {}: none", q.display(vocab)),
        }
    }
    let lints = lint(&doc.tcs);
    if !lints.is_empty() {
        println!("{} lint(s):", lints.len());
        for l in &lints {
            println!("  {}", l.render(&doc.tcs, vocab));
        }
    }
}

/// Treats the document's facts as the *ideal* state, derives the minimal
/// available state the statements allow (`T_C`, Proposition 2), and
/// reports what each query would lose.
fn cmd_simulate(vocab: &Vocabulary, doc: &Document) {
    let ideal = doc.facts.clone();
    let available = tc_apply(&doc.tcs, &ideal);
    println!(
        "ideal state: {} facts; minimal guaranteed available state: {} facts",
        ideal.len(),
        available.len()
    );
    let db = IncompleteDatabase::new(ideal, available).expect("T_C(D) is a subset of D");
    for q in &doc.queries {
        match (answers(q, db.ideal()), answers(q, db.available())) {
            (Ok(ideal_ans), Ok(avail_ans)) => {
                let lost: Vec<_> = ideal_ans.difference(&avail_ans).collect();
                println!(
                    "{}: {} ideal answer(s), {} guaranteed, {} at risk",
                    q.display(vocab),
                    ideal_ans.len(),
                    avail_ans.len(),
                    lost.len()
                );
                for t in lost {
                    println!("  at risk: {}", t.display(vocab));
                }
            }
            (Err(e), _) | (_, Err(e)) => println!("cannot evaluate {}: {e}", q.display(vocab)),
        }
    }
}

/// Output format of `magik analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnalyzeFormat {
    Text,
    Json,
    Sarif,
}

/// Recursively collects `*.magik` files under `dir`, sorted by path so
/// runs are deterministic.
fn collect_magik_files(dir: &std::path::Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            collect_magik_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "magik") {
            out.push(p.to_string_lossy().into_owned());
        }
    }
    Ok(())
}

/// `magik analyze <file|dir>... [--format text|json|sarif] [--deny LEVEL]
/// [--fix] [--baseline F] [--write-baseline F] [--explain M0xx]` — run
/// the static analyzer over every input (directories recurse into
/// `*.magik`) and render one report with one aggregated exit code:
/// 0 clean (below the deny level everywhere), 1 usage/read error,
/// 2 parse error, 3 diagnostics at or above the deny level; the worst
/// code across all inputs wins. `--fix` applies the machine-applicable
/// suggestions in place and re-analyzes the result.
fn cmd_analyze(args: &[String]) -> ExitCode {
    let mut format = AnalyzeFormat::Text;
    let mut deny = Severity::Error;
    let mut fix = false;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut rest = args.iter();
    while let Some(opt) = rest.next() {
        match opt.as_str() {
            "--format" => match rest.next().map(String::as_str) {
                Some("text") => format = AnalyzeFormat::Text,
                Some("json") => format = AnalyzeFormat::Json,
                Some("sarif") => format = AnalyzeFormat::Sarif,
                _ => {
                    eprintln!("magik: --format requires `text`, `json` or `sarif`");
                    return ExitCode::from(1);
                }
            },
            "--deny" => match rest.next().and_then(|v| Severity::parse(v)) {
                Some(level) => deny = level,
                None => {
                    eprintln!("magik: --deny requires `infos`, `warnings` or `errors`");
                    return ExitCode::from(1);
                }
            },
            "--fix" => fix = true,
            "--baseline" => match rest.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => {
                    eprintln!("magik: --baseline requires a file path");
                    return ExitCode::from(1);
                }
            },
            "--write-baseline" => match rest.next() {
                Some(p) => write_baseline = Some(p.clone()),
                None => {
                    eprintln!("magik: --write-baseline requires a file path");
                    return ExitCode::from(1);
                }
            },
            "--explain" => {
                return match rest.next().and_then(|v| Code::parse(v)) {
                    Some(code) => {
                        match explain_code(code) {
                            Some(entry) => print!("{entry}"),
                            None => println!("{}: {}", code.as_str(), code.title()),
                        }
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("magik: --explain requires a diagnostic code (M001–M024)");
                        ExitCode::from(1)
                    }
                };
            }
            other if other == "-" || !other.starts_with('-') => {
                inputs.push(other.to_string());
            }
            other => {
                eprintln!("magik: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    if inputs.is_empty() {
        eprintln!("magik: missing <file>\n{USAGE}");
        return ExitCode::from(1);
    }
    if fix && inputs.iter().any(|p| p == "-") {
        eprintln!("magik: --fix requires file paths, not stdin");
        return ExitCode::from(1);
    }
    // Expand directories into their `*.magik` files, in CLI order.
    let mut files: Vec<String> = Vec::new();
    for input in &inputs {
        if input != "-" && std::path::Path::new(input).is_dir() {
            if let Err(e) = collect_magik_files(std::path::Path::new(input), &mut files) {
                eprintln!("magik: cannot read directory `{input}`: {e}");
                return ExitCode::from(1);
            }
        } else {
            files.push(input.clone());
        }
    }
    let baseline = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p).map_err(|e| e.to_string()) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("magik: cannot parse baseline `{p}`: {e}");
                    return ExitCode::from(1);
                }
            },
            Err(e) => {
                eprintln!("magik: cannot read baseline `{p}`: {e}");
                return ExitCode::from(1);
            }
        },
        None => None,
    };
    let mut recorded = Baseline::new();
    let mut exit: u8 = 0;
    // (path, source, kept diagnostics) per analyzed file; SARIF renders
    // them as one run at the end.
    let mut analyzed: Vec<(String, String, Vec<Diagnostic>)> = Vec::new();
    for path in &files {
        let mut src = match read_input(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("magik: cannot read `{path}`: {e}");
                exit = exit.max(1);
                continue;
            }
        };
        if fix {
            match fix_source(&src) {
                Ok(report) => {
                    if report.applied > 0 {
                        if let Err(e) = std::fs::write(path, &report.text) {
                            eprintln!("magik: cannot write fixed `{path}`: {e}");
                            exit = exit.max(1);
                            continue;
                        }
                        eprintln!(
                            "magik: {path}: applied {} fix(es) in {} round(s)",
                            report.applied, report.rounds
                        );
                        src = report.text;
                    }
                }
                Err(e) => {
                    eprintln!("magik: {path}:{e}");
                    exit = exit.max(2);
                    continue;
                }
            }
        }
        let mut vocab = Vocabulary::new();
        let doc = match parse_document(&src, &mut vocab) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("magik: {path}:{e}");
                exit = exit.max(2);
                continue;
            }
        };
        let diags = analyze_document(&doc, &mut vocab);
        let directives = allow_directives(&doc.spans.comments);
        let index = magik::parser::LineIndex::new(&src);
        let (kept, suppressed) = filter_suppressed(diags, &directives, &index);
        let (kept, baselined) = match &baseline {
            Some(b) => b.filter(path, kept),
            None => (kept, Vec::new()),
        };
        if write_baseline.is_some() {
            recorded.record(path, &kept);
        }
        match format {
            AnalyzeFormat::Text => {
                let source = SourceFile::new(path, &src);
                print!("{}", render_report(&kept, Some(&source)));
                if !suppressed.is_empty() {
                    println!("{path}: {} suppressed", suppressed.len());
                }
                if !baselined.is_empty() {
                    println!("{path}: {} baselined", baselined.len());
                }
            }
            AnalyzeFormat::Json => {
                let source = SourceFile::new(path, &src);
                println!("{}", render_json(&kept, Some(&source)));
            }
            AnalyzeFormat::Sarif => {}
        }
        if kept.iter().any(|d| d.severity >= deny) {
            exit = exit.max(3);
        }
        analyzed.push((path.clone(), src, kept));
    }
    if format == AnalyzeFormat::Sarif {
        let sources: Vec<SourceFile> = analyzed
            .iter()
            .map(|(path, src, _)| SourceFile::new(path, src))
            .collect();
        let entries: Vec<SarifFile> = analyzed
            .iter()
            .zip(&sources)
            .map(|((path, _, kept), source)| SarifFile {
                name: path,
                source: Some(source),
                diags: kept,
            })
            .collect();
        print!("{}", render_sarif(&entries, env!("CARGO_PKG_VERSION")));
    }
    if let Some(p) = &write_baseline {
        if let Err(e) = std::fs::write(p, recorded.to_json()) {
            eprintln!("magik: cannot write baseline `{p}`: {e}");
            return ExitCode::from(1);
        }
        eprintln!(
            "magik: wrote baseline `{p}` with {} finding(s)",
            recorded.len()
        );
    }
    ExitCode::from(exit)
}

/// Escapes a string for inclusion in a JSON string literal (for the
/// hand-rolled error objects of `explain-plan --format json`; plan
/// objects themselves are rendered by [`explain_json`]).
fn cli_json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// `magik explain-plan <file> [--format text|json]` — compile each query
/// against the document's `fact` items, execute it, and render the
/// chosen plan (atom order, access paths, estimates) together with the
/// runtime counters from that execution. Queries the planner rejects
/// (unsafe heads) are reported without aborting the run. JSON output is
/// one array with a plan object (see `magik-exec`) or an
/// `{"query":…,"error":…}` object per query.
fn cmd_explain_plan(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut file = None;
    let mut rest = args.iter();
    while let Some(opt) = rest.next() {
        match opt.as_str() {
            "--format" => match rest.next().map(String::as_str) {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => {
                    eprintln!("magik: --format requires `text` or `json`");
                    return ExitCode::from(1);
                }
            },
            other if other == "-" || (!other.starts_with('-') && file.is_none()) => {
                file = Some(other.to_string());
            }
            other => {
                eprintln!("magik: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    let Some(path) = file else {
        eprintln!("magik: missing <file>\n{USAGE}");
        return ExitCode::from(1);
    };
    let (vocab, doc, _) = match load(&path) {
        Ok(x) => x,
        Err(code) => return code,
    };
    let mut objects = Vec::new();
    for (i, q) in doc.queries.iter().enumerate() {
        match CompiledQuery::compile(q, Some(&doc.facts)) {
            Ok(cq) => {
                let mut stats = ExecStats::default();
                cq.answers(&doc.facts, &mut stats);
                if json {
                    objects.push(explain_json(&cq, Some(&stats), &vocab));
                } else {
                    if i > 0 {
                        println!();
                    }
                    print!("{}", explain_text(&cq, Some(&stats), &vocab));
                }
            }
            Err(e) => {
                if json {
                    objects.push(format!(
                        r#"{{"query":"{}","error":"{}"}}"#,
                        cli_json_escape(&q.display(&vocab).to_string()),
                        cli_json_escape(&e.to_string())
                    ));
                } else {
                    if i > 0 {
                        println!();
                    }
                    println!("cannot plan {}: {e}", q.display(&vocab));
                }
            }
        }
    }
    if json {
        println!("[{}]", objects.join(","));
    }
    ExitCode::SUCCESS
}

/// Feeds a parsed document's statements and facts through the engine's
/// normal request path (so in durable mode each item is write-ahead
/// logged like live traffic). Returns the number of items refused.
fn preload_document(engine: &Engine, vocab: &Vocabulary, doc: &Document) -> usize {
    let mut refused = 0;
    for stmt in doc.tcs.statements() {
        let line = format!("{}.", stmt.display(vocab));
        let reply = engine.handle(&line);
        if !reply.starts_with("ok") {
            eprintln!("magik: preload refused `{line}`: {reply}");
            refused += 1;
        }
    }
    for fact in doc.facts.iter_facts() {
        let line = format!("assert {}.", fact.display(vocab));
        let reply = engine.handle(&line);
        if !reply.starts_with("ok") {
            eprintln!("magik: preload refused `{line}`: {reply}");
            refused += 1;
        }
    }
    refused
}

/// Prints the one-line recovery banner for a durable open.
fn print_recovery(dir: &str, report: &RecoveryReport) {
    println!(
        "magik: recovered `{dir}`: epochs (tcs={}, data={}), {} from checkpoint, \
         {} op(s) replayed{}{}",
        report.tcs_epoch,
        report.data_epoch,
        if report.from_checkpoint {
            "seeded"
        } else {
            "not seeded"
        },
        report.replayed_ops,
        if report.discarded_bytes > 0 {
            format!(", {} torn byte(s) discarded", report.discarded_bytes)
        } else {
            String::new()
        },
        if report.checkpoints_skipped > 0 {
            format!(
                ", {} corrupt checkpoint generation(s) skipped",
                report.checkpoints_skipped
            )
        } else {
            String::new()
        },
    );
}

/// `magik serve [--addr HOST:PORT] [--workers N] [--threads N]
/// [--data-dir DIR] [--fsync MODE] [--checkpoint-every N]
/// [--segment-bytes N] [file]` — run the TCP completeness service (see
/// `magik-server`), optionally preloading the TCS and facts of a
/// document. Blocks until killed.
///
/// `--workers` sizes the connection pool (one handler per live
/// connection); `--threads` sizes the *reasoning* pool the engine fans
/// parallel work out over, defaulting to the `MAGIK_THREADS` environment
/// variable, and failing that to the machine's available parallelism.
/// `--threads 1` reasons sequentially.
///
/// `--data-dir` turns on the durability layer: the directory is
/// recovered (checkpoint + verified WAL replay) before serving, and
/// every accepted mutation is logged before it is applied. A preload
/// file is only applied to a *virgin* directory — recovered state wins
/// over the file otherwise.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut workers = 4usize;
    let mut threads = std::env::var("MAGIK_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(magik::available_parallelism);
    let mut file = None;
    let mut data_dir: Option<String> = None;
    let mut durability = DurabilityOptions::default();
    let mut rest = args.iter();
    while let Some(opt) = rest.next() {
        match opt.as_str() {
            "--addr" => match rest.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("magik: --addr requires HOST:PORT");
                    return ExitCode::from(1);
                }
            },
            "--workers" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => {
                    eprintln!("magik: --workers requires a positive integer");
                    return ExitCode::from(1);
                }
            },
            "--threads" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("magik: --threads requires a positive integer");
                    return ExitCode::from(1);
                }
            },
            "--data-dir" => match rest.next() {
                Some(d) => data_dir = Some(d.clone()),
                None => {
                    eprintln!("magik: --data-dir requires a directory path");
                    return ExitCode::from(1);
                }
            },
            "--fsync" => match rest.next().and_then(|v| FsyncPolicy::parse(v)) {
                Some(policy) => durability.fsync = policy,
                None => {
                    eprintln!("magik: --fsync requires `always`, `never` or `interval[:MILLIS]`");
                    return ExitCode::from(1);
                }
            },
            "--checkpoint-every" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) => durability.checkpoint_every = n,
                None => {
                    eprintln!("magik: --checkpoint-every requires a non-negative integer");
                    return ExitCode::from(1);
                }
            },
            "--segment-bytes" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => durability.segment_bytes = n,
                _ => {
                    eprintln!("magik: --segment-bytes requires a positive integer");
                    return ExitCode::from(1);
                }
            },
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("magik: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    let exec = magik::Executor::with_threads(threads);
    let preload = match &file {
        Some(path) => {
            let (vocab, doc, _) = match load(path) {
                Ok(x) => x,
                Err(code) => return code,
            };
            if !doc.queries.is_empty() {
                eprintln!(
                    "magik: note: `query` items in `{path}` are ignored by serve; \
                     send them as `check`/`eval` requests"
                );
            }
            Some((vocab, doc))
        }
        None => None,
    };
    let engine = match &data_dir {
        Some(dir) => {
            let (engine, report) =
                match Engine::open_durable(std::path::Path::new(dir), durability, exec) {
                    Ok(x) => x,
                    Err(e) => {
                        eprintln!("magik: cannot open data dir `{dir}`: {e}");
                        return ExitCode::from(2);
                    }
                };
            print_recovery(dir, &report);
            if let Some((vocab, doc)) = &preload {
                let virgin = !report.from_checkpoint
                    && report.replayed_ops == 0
                    && (report.tcs_epoch, report.data_epoch) == (0, 0);
                if virgin {
                    preload_document(&engine, vocab, doc);
                } else {
                    eprintln!(
                        "magik: note: `{dir}` already holds recovered state; \
                         the preload file is ignored"
                    );
                }
            }
            engine
        }
        None => match preload {
            Some((vocab, doc)) => Engine::with_session_on(vocab, doc.tcs, doc.facts, exec),
            None => Engine::with_session_on(
                Vocabulary::new(),
                magik::TcSet::new(Vec::new()),
                magik::Instance::new(),
                exec,
            ),
        },
    };
    let server = match Server::start(std::sync::Arc::new(engine), addr.as_str(), workers) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("magik: cannot bind `{addr}`: {e}");
            return ExitCode::from(1);
        }
    };
    let bound = server.local_addr();
    println!(
        "magik: serving on {bound} with {workers} workers and {threads} reasoning \
         threads (try `nc {} {}` then `ping`)",
        bound.ip(),
        bound.port()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `magik replicate --from HOST:PORT --data-dir DIR [--addr HOST:PORT]
/// [--workers N] [--threads N] [--fsync MODE] [--checkpoint-every N]
/// [--segment-bytes N]` — run a read-only replica of a primary started
/// with `magik serve --data-dir`. Blocks until killed.
///
/// Before serving, the replica compares its local position with the
/// primary: if the primary's retained WAL no longer covers that
/// position, the primary's newest checkpoint is downloaded and installed
/// first (`initial sync`). The local directory is then recovered through
/// the exact same code path as a primary restart, and a follower thread
/// streams the primary's WAL, replaying each op and verifying it
/// re-derives the epochs the primary logged. Mutations over the wire are
/// refused with `err readonly …`; the `replication` request reports
/// connection state and epoch lag.
fn cmd_replicate(args: &[String]) -> ExitCode {
    let mut from: Option<String> = None;
    let mut addr = "127.0.0.1:7172".to_string();
    let mut workers = 4usize;
    let mut threads = std::env::var("MAGIK_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(magik::available_parallelism);
    let mut data_dir: Option<String> = None;
    let mut durability = DurabilityOptions::default();
    let mut rest = args.iter();
    while let Some(opt) = rest.next() {
        match opt.as_str() {
            "--from" => match rest.next() {
                Some(a) => from = Some(a.clone()),
                None => {
                    eprintln!("magik: --from requires HOST:PORT");
                    return ExitCode::from(1);
                }
            },
            "--addr" => match rest.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("magik: --addr requires HOST:PORT");
                    return ExitCode::from(1);
                }
            },
            "--workers" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => {
                    eprintln!("magik: --workers requires a positive integer");
                    return ExitCode::from(1);
                }
            },
            "--threads" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("magik: --threads requires a positive integer");
                    return ExitCode::from(1);
                }
            },
            "--data-dir" => match rest.next() {
                Some(d) => data_dir = Some(d.clone()),
                None => {
                    eprintln!("magik: --data-dir requires a directory path");
                    return ExitCode::from(1);
                }
            },
            "--fsync" => match rest.next().and_then(|v| FsyncPolicy::parse(v)) {
                Some(policy) => durability.fsync = policy,
                None => {
                    eprintln!("magik: --fsync requires `always`, `never` or `interval[:MILLIS]`");
                    return ExitCode::from(1);
                }
            },
            "--checkpoint-every" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) => durability.checkpoint_every = n,
                None => {
                    eprintln!("magik: --checkpoint-every requires a non-negative integer");
                    return ExitCode::from(1);
                }
            },
            "--segment-bytes" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => durability.segment_bytes = n,
                _ => {
                    eprintln!("magik: --segment-bytes requires a positive integer");
                    return ExitCode::from(1);
                }
            },
            other => {
                eprintln!("magik: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    let Some(from) = from else {
        eprintln!("magik: replicate requires --from HOST:PORT\n{USAGE}");
        return ExitCode::from(1);
    };
    let Some(dir) = data_dir else {
        eprintln!("magik: replicate requires --data-dir DIR (replicas replay through the same durable recovery path as a primary)\n{USAGE}");
        return ExitCode::from(1);
    };
    // Bootstrap: if the primary's retained log no longer reaches our
    // position, install its newest checkpoint before opening.
    match initial_sync(&from, std::path::Path::new(&dir)) {
        Ok(Some((te, de))) => {
            println!("magik: installed checkpoint (tcs={te}, data={de}) from {from}");
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("magik: initial sync with `{from}` failed: {e}");
            return ExitCode::from(2);
        }
    }
    let exec = magik::Executor::with_threads(threads);
    let (engine, report) = match Engine::open_durable(std::path::Path::new(&dir), durability, exec)
    {
        Ok(x) => x,
        Err(e) => {
            eprintln!("magik: cannot open data dir `{dir}`: {e}");
            return ExitCode::from(2);
        }
    };
    print_recovery(&dir, &report);
    let engine = std::sync::Arc::new(engine);
    let status = std::sync::Arc::new(ReplicaStatus::new());
    let server = match Server::start_with(
        std::sync::Arc::clone(&engine),
        addr.as_str(),
        ServerConfig {
            workers,
            read_only: true,
            replica_status: Some(std::sync::Arc::clone(&status)),
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("magik: cannot bind `{addr}`: {e}");
            return ExitCode::from(1);
        }
    };
    let bound = server.local_addr();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let engine = std::sync::Arc::clone(&engine);
        let primary = from.clone();
        let status = std::sync::Arc::clone(&status);
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || run_replica(&engine, &primary, &status, &stop));
    }
    println!(
        "magik: replica of {from} serving read-only on {bound} with {workers} workers and \
         {threads} reasoning threads (try `nc {} {}` then `replication`)",
        bound.ip(),
        bound.port()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `magik recover --data-dir DIR [--verify]` — inspect a durable data
/// directory without modifying it: report the checkpoint recovery would
/// seed from, the WAL tail it would replay, and any torn bytes it would
/// discard. With `--verify`, additionally replay the tail into a scratch
/// engine and confirm every op re-derives exactly its logged epochs.
/// Exit codes: 0 recoverable, 1 usage error, 2 corrupt/unreadable.
fn cmd_recover(args: &[String]) -> ExitCode {
    let mut dir: Option<String> = None;
    let mut verify = false;
    let mut rest = args.iter();
    while let Some(opt) = rest.next() {
        match opt.as_str() {
            "--data-dir" => match rest.next() {
                Some(d) => dir = Some(d.clone()),
                None => {
                    eprintln!("magik: --data-dir requires a directory path");
                    return ExitCode::from(1);
                }
            },
            "--verify" => verify = true,
            other if !other.starts_with('-') && dir.is_none() => dir = Some(other.to_string()),
            other => {
                eprintln!("magik: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("magik: recover requires --data-dir DIR\n{USAGE}");
        return ExitCode::from(1);
    };
    let path = std::path::Path::new(&dir);
    let recovery = match magik::storage::Store::peek(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("magik: `{dir}` is not recoverable: {e}");
            return ExitCode::from(2);
        }
    };
    match &recovery.checkpoint {
        Some(image) => println!(
            "checkpoint: epochs (tcs={}, data={}), {} fact(s), {} statement(s)",
            image.tcs_epoch,
            image.data_epoch,
            image.db.len(),
            image.tcs.len()
        ),
        None => println!("checkpoint: none (replay starts from an empty session)"),
    }
    if recovery.checkpoints_skipped > 0 {
        println!(
            "corrupt checkpoint generation(s) skipped: {}",
            recovery.checkpoints_skipped
        );
    }
    let (te, de) = recovery.final_epochs();
    println!(
        "wal tail: {} op(s) to replay over {} segment(s), reaching epochs (tcs={te}, data={de})",
        recovery.replayed_ops(),
        recovery.segments_scanned
    );
    if recovery.discarded_bytes > 0 {
        println!("torn tail: {} byte(s) discarded", recovery.discarded_bytes);
    }
    if verify {
        match Engine::verify_recovery(path, magik::Executor::Sequential) {
            Ok(report) => println!(
                "verify: OK — replay of {} op(s) reaches epochs (tcs={}, data={})",
                report.replayed_ops, report.tcs_epoch, report.data_epoch
            ),
            Err(e) => {
                eprintln!("magik: `{dir}` fails replay verification: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };
    if command == "analyze" {
        return cmd_analyze(&args[1..]);
    }
    if command == "explain-plan" {
        return cmd_explain_plan(&args[1..]);
    }
    if command == "serve" {
        return cmd_serve(&args[1..]);
    }
    if command == "replicate" {
        return cmd_replicate(&args[1..]);
    }
    if command == "recover" {
        return cmd_recover(&args[1..]);
    }
    if command == "repl" {
        let mut session = repl::Repl::new();
        let stdin = std::io::stdin();
        let mut input = stdin.lock();
        let stdout = std::io::stdout();
        let mut output = stdout.lock();
        if let Some(path) = args.get(1) {
            if session.load_file(path, &mut output).is_err() {
                return ExitCode::from(1);
            }
        }
        return match session.run(&mut input, &mut output) {
            Ok(()) => ExitCode::SUCCESS,
            Err(_) => ExitCode::from(1),
        };
    }
    let Some(path) = args.get(1) else {
        eprintln!("magik: missing <file>\n{USAGE}");
        return ExitCode::from(1);
    };

    // Options (`specialize`/`bounds` take -k; `check` takes --why).
    let mut k = 0usize;
    let mut naive = false;
    let mut why = false;
    let mut why_json = false;
    let mut rest = args[2..].iter();
    while let Some(opt) = rest.next() {
        match opt.as_str() {
            "-k" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) => k = v,
                None => {
                    eprintln!("magik: -k requires a non-negative integer");
                    return ExitCode::from(1);
                }
            },
            "--naive" => naive = true,
            "--why" if command == "check" => why = true,
            "--format" if command == "check" => match rest.next().map(String::as_str) {
                Some("text") => why_json = false,
                Some("json") => why_json = true,
                _ => {
                    eprintln!("magik: --format requires `text` or `json`");
                    return ExitCode::from(1);
                }
            },
            other => {
                eprintln!("magik: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }

    let (mut vocab, doc, src) = match load(path) {
        Ok(x) => x,
        Err(code) => return code,
    };
    match command.as_str() {
        "check" if why => cmd_check_why(&vocab, &doc, &src, why_json),
        "check" => cmd_check(&vocab, &doc),
        "generalize" => cmd_generalize(&vocab, &doc),
        "specialize" => cmd_specialize(&mut vocab, &doc, k, naive),
        "eval" => cmd_eval(&vocab, &doc),
        "bounds" => cmd_bounds(&mut vocab, &doc, k),
        "why" => cmd_why(&vocab, &doc, &src),
        "explain" => cmd_explain(&vocab, &doc),
        "simulate" => cmd_simulate(&vocab, &doc),
        other => {
            eprintln!("magik: unknown command `{other}`\n{USAGE}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
