//! Property-based laws for the `--fix` driver.
//!
//! For any parseable document:
//!
//! 1. `fix_source` output re-parses cleanly (fixes never corrupt syntax);
//! 2. the severity profile (errors, warnings, infos) never increases,
//!    and strictly decreases whenever edits were applied — the driver's
//!    progress guard makes this hold by construction;
//! 3. a second pass is a no-op (idempotence).

use proptest::prelude::*;

use magik_analyze::{analyze_document, fix_source, severity_profile};
use magik_parser::parse_document;
use magik_relalg::Vocabulary;

const NUM_PREDS: u8 = 3;

fn pred_arity(p: u8) -> usize {
    [1, 2, 2][p as usize % 3]
}

#[derive(Debug, Clone, Copy)]
enum ATerm {
    Var(u8),
    Cst(u8),
}

#[derive(Debug, Clone)]
struct AAtom {
    pred: u8,
    args: Vec<ATerm>,
}

fn aterm() -> impl Strategy<Value = ATerm> {
    prop_oneof![(0..4u8).prop_map(ATerm::Var), (0..2u8).prop_map(ATerm::Cst)]
}

fn aatom() -> impl Strategy<Value = AAtom> {
    (0..NUM_PREDS).prop_flat_map(|p| {
        proptest::collection::vec(aterm(), pred_arity(p))
            .prop_map(move |args| AAtom { pred: p, args })
    })
}

fn render_atom(a: &AAtom) -> String {
    let args: Vec<String> = a
        .args
        .iter()
        .map(|&t| match t {
            ATerm::Var(i) => format!("X{i}"),
            ATerm::Cst(i) => format!("c{i}"),
        })
        .collect();
    format!("p{}({})", a.pred, args.join(", "))
}

/// Renders a document with duplicated statements and possibly-unsafe
/// queries: head variables are drawn independently of the body, so the
/// generator regularly produces M001/M006-fixable inputs alongside
/// clean ones. Bit `i` of `dup_mask` duplicates statement `i` verbatim.
fn render_doc(
    stmts: &[(AAtom, Vec<AAtom>)],
    dup_mask: u32,
    queries: &[(Vec<ATerm>, Vec<AAtom>)],
) -> String {
    let mut out = String::new();
    for (i, (head, cond)) in stmts.iter().enumerate() {
        let cond_txt = if cond.is_empty() {
            "true".to_string()
        } else {
            cond.iter().map(render_atom).collect::<Vec<_>>().join(", ")
        };
        let line = format!("compl {} ; {}.\n", render_atom(head), cond_txt);
        out.push_str(&line);
        if dup_mask & (1 << i) != 0 {
            out.push_str(&line);
        }
    }
    for (qi, (head_terms, body)) in queries.iter().enumerate() {
        if body.is_empty() {
            continue;
        }
        let head: Vec<String> = head_terms
            .iter()
            .map(|&t| match t {
                ATerm::Var(i) => format!("X{i}"),
                ATerm::Cst(i) => format!("c{i}"),
            })
            .collect();
        let body_txt = body.iter().map(render_atom).collect::<Vec<_>>().join(", ");
        out.push_str(&format!(
            "query q{qi}({}) :- {}.\n",
            head.join(", "),
            body_txt
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fix_laws_hold(
        stmts in proptest::collection::vec((aatom(), proptest::collection::vec(aatom(), 0..2)), 1..4),
        dup_mask in 0..16u32,
        queries in proptest::collection::vec((proptest::collection::vec(aterm(), 1..3), proptest::collection::vec(aatom(), 0..3)), 0..2),
    ) {
        let src = render_doc(&stmts, dup_mask, &queries);
        let mut vocab = Vocabulary::new();
        // Some generated documents may be rejected by the parser; the
        // fix laws only speak about parseable inputs.
        if let Ok(doc) = parse_document(&src, &mut vocab) {
            let before = severity_profile(&analyze_document(&doc, &mut vocab));

            let report = fix_source(&src).expect("parseable input");

            // Law 1: output re-parses cleanly.
            let mut vocab2 = Vocabulary::new();
            let fixed_doc = parse_document(&report.text, &mut vocab2)
                .expect("fixed source re-parses");
            let after = severity_profile(&analyze_document(&fixed_doc, &mut vocab2));

            // Law 2: lexicographic severity profile never increases, and
            // strictly decreases when edits were applied.
            prop_assert!(after <= before, "profile grew: {before:?} -> {after:?}\n{src}");
            if report.applied > 0 {
                prop_assert!(after < before, "no progress despite {} edits:\n{src}", report.applied);
            } else {
                prop_assert_eq!(&report.text, &src);
            }
            prop_assert!(report.diags_after <= report.diags_before || after < before);

            // Law 3: a second pass is a no-op.
            let second = fix_source(&report.text).expect("fixed source re-parses");
            prop_assert_eq!(second.applied, 0, "second pass not a no-op:\n{}", report.text);
            prop_assert_eq!(&second.text, &report.text);
        }
    }
}
