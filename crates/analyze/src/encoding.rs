//! Dependency-graph checks on the Section 5 Datalog encoding of `T_C`
//! (M015–M017).
//!
//! The encoding turns every statement `Compl(R(s̄); G)` into the rule
//! `R@a(s̄) ← R@i(s̄), G@i` ([`magik_completeness::tc_encoding`]). As a
//! Datalog program this is flat — all heads are `@a` relations, all body
//! atoms `@i` relations — so the interesting structure lives in the
//! *bridged* graph where consuming `S@i` may in turn require the rules
//! producing `S@a` (the specialization search discharges a condition on
//! `S` by making the `S`-part of the query provably complete).
//!
//! * **M015/M016 — recursion cycles.** A cycle in the statement
//!   dependency graph means specializations can grow without bound
//!   (Theorem 17) — unless the set is *weakly acyclic*, in which case
//!   sizes stay bounded and the cycle is only worth an info note.
//! * **M017 — unused rules.** A rule (statement) whose `@a` relation is
//!   not reachable from any query's relations through the bridged graph
//!   contributes nothing to reasoning about this document's queries.

use std::collections::{BTreeMap, BTreeSet};

use magik_completeness::{tc_encoding, TcSet};
use magik_relalg::{DisplayWith, Pred, Query, Vocabulary};

use crate::diag::{Code, Diagnostic, Location, StatementPart};

/// Runs the encoding checks. Interns the `@i`/`@a` relation variants
/// into `vocab` (the only reason it is mutable).
pub(crate) fn encoding_diags(
    tcs: &TcSet,
    queries: &[Query],
    vocab: &mut Vocabulary,
) -> Vec<Diagnostic> {
    if tcs.is_empty() {
        return Vec::new();
    }
    let (program, ideal, avail) = tc_encoding(tcs, vocab);
    let mut out = Vec::new();

    // M015/M016: cycles in the statement dependency graph.
    if !tcs.is_acyclic() {
        let cyclic = cyclic_preds(&tcs.dependency_graph());
        let names = cyclic
            .iter()
            .map(|&p| format!("`{}`", vocab.pred_name(p)))
            .collect::<Vec<_>>()
            .join(", ");
        let location = tcs
            .statements()
            .iter()
            .position(|c| cyclic.contains(&c.head.pred))
            .map_or(Location::Document, |i| Location::Statement {
                index: i,
                part: StatementPart::Whole,
            });
        if tcs.is_weakly_acyclic() {
            out.push(
                Diagnostic::new(
                    Code::BoundedRecursion,
                    location,
                    format!("statement dependencies are recursive (cycle through {names})"),
                )
                .with_note(
                    "the set is weakly acyclic, so MCS sizes remain bounded despite the cycle",
                ),
            );
        } else {
            out.push(
                Diagnostic::new(
                    Code::UnboundedRecursion,
                    location,
                    format!(
                        "statement dependencies contain a cycle through {names} that is not \
                         weakly acyclic"
                    ),
                )
                .with_note(
                    "maximal complete specializations can grow without bound (Theorem 17); \
                     only the k-bounded MCS search terminates",
                ),
            );
        }
    }

    // M017: rules unreachable from every query.
    if !queries.is_empty() {
        let dep = program.dependency_graph();
        let ideal_back: BTreeMap<Pred, Pred> = ideal.iter().map(|(&r, &ri)| (ri, r)).collect();
        let mut seen: BTreeSet<Pred> = BTreeSet::new();
        let mut stack: Vec<Pred> = Vec::new();
        for q in queries {
            for atom in &q.body {
                if let Some(&ra) = avail.get(&atom.pred) {
                    if seen.insert(ra) {
                        stack.push(ra);
                    }
                }
            }
        }
        while let Some(p) = stack.pop() {
            for &d in dep.get(&p).into_iter().flatten() {
                if seen.insert(d) {
                    stack.push(d);
                }
                // Bridge: needing S@i means the rules producing S@a may
                // fire to discharge the condition on S.
                if let Some(&r) = ideal_back.get(&d) {
                    if let Some(&ra) = avail.get(&r) {
                        if seen.insert(ra) {
                            stack.push(ra);
                        }
                    }
                }
            }
        }
        for (i, c) in tcs.statements().iter().enumerate() {
            if !seen.contains(&avail[&c.head.pred]) {
                out.push(
                    Diagnostic::new(
                        Code::UnusedStatement,
                        Location::Statement {
                            index: i,
                            part: StatementPart::Whole,
                        },
                        format!(
                            "statement is unused: no query in the document reaches relation `{}`",
                            vocab.pred_name(c.head.pred)
                        ),
                    )
                    .with_note(format!(
                        "its encoding rule `{}` is unreachable from every query's relations",
                        program.rules()[i].display(vocab)
                    )),
                );
            }
        }
    }
    out
}

/// The predicates lying on a cycle of `graph` (edges `p → deps`).
fn cyclic_preds(graph: &BTreeMap<Pred, BTreeSet<Pred>>) -> BTreeSet<Pred> {
    let mut cyclic = BTreeSet::new();
    for &start in graph.keys() {
        // DFS from the successors of `start`; reaching `start` again
        // closes a cycle. Graphs here are statement signatures — tiny.
        let mut stack: Vec<Pred> = graph[&start].iter().copied().collect();
        let mut seen: BTreeSet<Pred> = stack.iter().copied().collect();
        let mut found = false;
        while let Some(p) = stack.pop() {
            if p == start {
                found = true;
                break;
            }
            for &d in graph.get(&p).into_iter().flatten() {
                if seen.insert(d) {
                    stack.push(d);
                }
            }
        }
        if found {
            cyclic.insert(start);
        }
    }
    cyclic
}
