//! SARIF 2.1.0 emitter.
//!
//! [`render_sarif`] turns the diagnostics of one or more analyzed files
//! into a single SARIF run so CI systems (GitHub code scanning in
//! particular) can annotate spec files inline. The output targets the
//! OASIS SARIF 2.1.0 schema: one `run` with a `tool.driver` carrying one
//! reporting descriptor per distinct code, and one `result` per
//! diagnostic with a physical location (line/column region when the
//! diagnostic has a span). Like every renderer in this crate the JSON is
//! hand-assembled — the workspace is std-only.

use std::collections::BTreeMap;

use crate::diag::{Code, Diagnostic, Severity, SourceFile};

/// The diagnostics of one analyzed file, paired with its source for
/// region resolution.
#[derive(Debug, Clone, Copy)]
pub struct SarifFile<'a> {
    /// Artifact URI (the path as given on the command line).
    pub name: &'a str,
    /// Source text, when available, for line/column regions.
    pub source: Option<&'a SourceFile<'a>>,
    /// The diagnostics reported for this file.
    pub diags: &'a [Diagnostic],
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn level(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Renders one SARIF 2.1.0 log covering all given files as a single run.
pub fn render_sarif(files: &[SarifFile<'_>], tool_version: &str) -> String {
    // Rules: every distinct code across all files, in numeric order,
    // with its index recorded for the results' `ruleIndex`.
    let mut rule_index: BTreeMap<Code, usize> = BTreeMap::new();
    for f in files {
        for d in f.diags {
            let next = rule_index.len();
            rule_index.entry(d.code).or_insert(next);
        }
    }
    let rules: Vec<String> = rule_index
        .keys()
        .map(|c| {
            format!(
                r#"{{"id":"{}","shortDescription":{{"text":"{}"}},"defaultConfiguration":{{"level":"{}"}}}}"#,
                c.as_str(),
                escape(c.title()),
                level(c.severity())
            )
        })
        .collect();

    let mut results = Vec::new();
    for f in files {
        for d in f.diags {
            let region = match (d.span, f.source) {
                (Some(span), Some(src)) => {
                    let (sl, sc) = src.line_index().line_col(span.start);
                    let (el, ec) = src.line_index().line_col(span.end);
                    format!(
                        r#","region":{{"startLine":{sl},"startColumn":{sc},"endLine":{el},"endColumn":{ec}}}"#
                    )
                }
                _ => String::new(),
            };
            let mut message = escape(&d.message);
            for note in &d.notes {
                message.push_str("\\n");
                message.push_str("note: ");
                message.push_str(&escape(note));
            }
            results.push(format!(
                r#"{{"ruleId":"{}","ruleIndex":{},"level":"{}","message":{{"text":"{}"}},"locations":[{{"physicalLocation":{{"artifactLocation":{{"uri":"{}"}}{}}}}}]}}"#,
                d.code.as_str(),
                rule_index[&d.code],
                level(d.severity),
                message,
                escape(f.name),
                region
            ));
        }
    }

    format!(
        concat!(
            "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",",
            "\"version\":\"2.1.0\",",
            "\"runs\":[{{\"tool\":{{\"driver\":{{",
            "\"name\":\"magik-analyze\",",
            "\"version\":\"{}\",",
            "\"rules\":[{}]}}}},",
            "\"results\":[{}]}}]}}\n"
        ),
        escape(tool_version),
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::analyze_document;
    use magik_parser::parse_document;
    use magik_relalg::Vocabulary;

    #[test]
    fn sarif_output_carries_rules_and_regions() {
        let src = "compl pupil(N, C, S) ; class(C, S, L, T).\nquery q(N) :- pupil(N, C, S).";
        let mut vocab = Vocabulary::new();
        let doc = parse_document(src, &mut vocab).unwrap();
        let diags = analyze_document(&doc, &mut vocab);
        let sf = SourceFile::new("spec.magik", src);
        let out = render_sarif(
            &[SarifFile {
                name: "spec.magik",
                source: Some(&sf),
                diags: &diags,
            }],
            "0.1.0",
        );
        assert!(out.contains(r#""version":"2.1.0""#), "{out}");
        assert!(out.contains(r#""id":"M004""#), "{out}");
        assert!(out.contains(r#""ruleId":"M004""#), "{out}");
        assert!(out.contains(r#""uri":"spec.magik""#), "{out}");
        assert!(out.contains(r#""startLine":1"#), "{out}");
        assert!(out.contains(r#""level":"warning""#), "{out}");
        // Rule indexes are consistent: every ruleIndex < number of rules.
        let rule_count = out.matches(r#""shortDescription""#).count();
        for chunk in out.split(r#""ruleIndex":"#).skip(1) {
            let n: usize = chunk
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap();
            assert!(n < rule_count, "{out}");
        }
    }

    #[test]
    fn spanless_diagnostics_get_file_level_locations() {
        let d = Diagnostic::new(
            Code::EmptyStatementSet,
            crate::diag::Location::Document,
            "no statements",
        );
        let out = render_sarif(
            &[SarifFile {
                name: "live",
                source: None,
                diags: &[d],
            }],
            "0.1.0",
        );
        assert!(out.contains(r#""uri":"live""#), "{out}");
        assert!(!out.contains("startLine"), "{out}");
        assert!(out.contains(r#""level":"note""#), "{out}");
    }
}
