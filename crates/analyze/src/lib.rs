//! Static analysis for MAGIK documents: span-aware diagnostics for TC
//! statements, queries, facts, constraints, and the Section 5 Datalog
//! encoding.
//!
//! Completeness metadata is hand-authored in practice, and bad metadata
//! fails *silently*: an unsatisfiable condition produces a statement that
//! never fires, a mistyped relation name makes every specialization
//! search come back empty after an exponential fixpoint, a cyclic
//! statement set makes the search grow without bound. This crate catches
//! those mistakes **before** reasoning, with diagnostics precise enough
//! to gate CI on.
//!
//! Every diagnostic has a stable code `M001`–`M017` (catalogued with
//! examples in the repository's `ANALYSES.md`), a severity, a logical
//! location, and — for parsed documents — a byte span rendered as a
//! rustc-style source excerpt. Reports come in text and JSON form.
//!
//! # Example
//!
//! ```
//! use magik_parser::parse_document;
//! use magik_relalg::Vocabulary;
//! use magik_analyze::{analyze_document, render_report, Code, SourceFile};
//!
//! let src = "compl pupil(N, C, S) ; class(C, S, L, T).\n\
//!            query q(N) :- pupil(N, C, S).";
//! let mut vocab = Vocabulary::new();
//! let doc = parse_document(src, &mut vocab).unwrap();
//! let diags = analyze_document(&doc, &mut vocab);
//! // The condition relation `class` heads no statement (M004), so no
//! // complete query can mention `pupil` either (M008).
//! assert!(diags.iter().any(|d| d.code == Code::UnguaranteeableCondition));
//! assert!(diags.iter().any(|d| d.code == Code::DeadQueryAtom));
//! let report = render_report(&diags, Some(&SourceFile::new("spec.magik", src)));
//! assert!(report.contains("M004"));
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod coverage;
mod diag;
mod encoding;
mod explain;
mod fix;
mod passes;
mod sarif;
mod state_passes;
mod suppress;

pub use coverage::guaranteeable_relations;
pub use diag::{
    render_json, render_report, render_text, summary_line, Applicability, Code, Diagnostic,
    Location, QueryPart, Severity, SourceFile, StatementPart, Suggestion,
};
pub use explain::{explain_code, CATALOGUE};
pub use fix::{apply_edits, fix_source, severity_profile, FixReport};
pub use passes::{analyze_document, analyze_query, analyze_statements};
pub use sarif::{render_sarif, SarifFile};
pub use state_passes::{analyze_check, analyze_state};
pub use suppress::{allow_directives, filter_suppressed, AllowDirective, Baseline, Fingerprint};

#[cfg(test)]
mod tests {
    use super::*;
    use magik_parser::parse_document;
    use magik_relalg::Vocabulary;

    fn analyze(src: &str) -> (Vec<Diagnostic>, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let doc = parse_document(src, &mut vocab).expect("test source parses");
        let diags = analyze_document(&doc, &mut vocab);
        (diags, vocab)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_running_example_yields_only_infos() {
        let (diags, _) = analyze(
            "compl school(S, primary, D) ; true.
             compl pupil(N, C, S) ; school(S, T, merano).
             compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
             query q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).
             fact school(goethe, primary, merano).
             fact pupil(john, c1, goethe).",
        );
        assert!(
            diags.iter().all(|d| d.severity == Severity::Info),
            "{diags:?}"
        );
        // The M010 bound is present for the query.
        assert!(codes(&diags).contains(&Code::FixpointBound));
    }

    #[test]
    fn table1_trap_is_reported_with_spans() {
        let src = "compl pupil(N, C, S) ; class(C, S, L, T).\n\
                   query q(N) :- pupil(N, C, S).";
        let (diags, _) = analyze(src);
        let m004 = diags
            .iter()
            .find(|d| d.code == Code::UnguaranteeableCondition)
            .expect("M004 fires");
        let span = m004.span.expect("span resolved");
        assert_eq!(&src[span.start..span.end], "class(C, S, L, T)");
        let m008 = diags
            .iter()
            .find(|d| d.code == Code::DeadQueryAtom)
            .expect("M008 fires");
        let span = m008.span.expect("span resolved");
        assert_eq!(&src[span.start..span.end], "pupil(N, C, S)");
        assert!(m008.notes.iter().any(|n| n.contains("k-MCS")));
    }

    #[test]
    fn self_supporting_cycle_is_not_dead_but_flagged_recursive() {
        // The Theorem 17 flight example shape: conn is self-supporting.
        let (diags, _) = analyze(
            "compl conn(X, Y) ; conn(Y, X).
             query q(X) :- conn(X, berlin).",
        );
        let cs = codes(&diags);
        assert!(!cs.contains(&Code::DeadQueryAtom), "{diags:?}");
        assert!(cs.contains(&Code::SelfConditioned));
        assert!(
            cs.contains(&Code::UnboundedRecursion) || cs.contains(&Code::BoundedRecursion),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_statement_under_domains() {
        // The condition forces T = evening, outside the domain of
        // column 1 of shift.
        let (diags, _) = analyze(
            "domain shift(_, T) in {day, night}.
             compl worker(W) ; shift(W, evening).
             query q(W) :- worker(W).",
        );
        let m005: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::DeadStatement)
            .collect();
        assert_eq!(m005.len(), 1, "{diags:?}");
        assert!(m005[0].message.contains("finite-domain"));
    }

    #[test]
    fn dead_statement_under_keys() {
        // The key on column 0 of s forces b = c: chase fails.
        let (diags, _) = analyze(
            "key s(K, _).
             compl p(X) ; s(X, b), s(X, c).",
        );
        assert!(codes(&diags).contains(&Code::DeadStatement), "{diags:?}");
    }

    #[test]
    fn unsafe_query_is_an_error() {
        let (diags, _) = analyze("compl p(X) ; true.\nquery q(X, Y) :- p(X).");
        let m006 = diags
            .iter()
            .find(|d| d.code == Code::UnsafeQuery)
            .expect("M006 fires");
        assert_eq!(m006.severity, Severity::Error);
        assert!(m006.message.contains("`Y`"));
    }

    #[test]
    fn unsatisfiable_query_under_domains() {
        let (diags, _) = analyze(
            "domain p(_, T) in {a, b}.
             compl p(X, T) ; true.
             query q(X) :- p(X, c).",
        );
        assert!(
            codes(&diags).contains(&Code::UnsatisfiableQuery),
            "{diags:?}"
        );
    }

    #[test]
    fn no_mcg_when_head_var_binds_only_headless_atoms() {
        let (diags, _) = analyze(
            "compl p(X) ; true.
             query q(X, Y) :- p(X), r(X, Y).",
        );
        let m009 = diags
            .iter()
            .find(|d| d.code == Code::NoMcg)
            .expect("M009 fires");
        assert!(m009.message.contains("`Y`"));
        // X is bound by the guaranteed p-atom, so only Y is reported.
        assert!(!m009.message.contains("`X`"));
    }

    #[test]
    fn unknown_relation_suppresses_dead_atom() {
        // `pupol` is a typo: occurs exactly once in the whole document.
        let (diags, _) = analyze(
            "compl pupil(N, C, S) ; true.
             query q(N) :- pupol(N, C, S).",
        );
        let cs = codes(&diags);
        assert!(cs.contains(&Code::UnknownRelation), "{diags:?}");
        assert!(!cs.contains(&Code::DeadQueryAtom), "{diags:?}");
    }

    #[test]
    fn fact_violations_are_errors() {
        let (diags, _) = analyze(
            "domain school(_, T, _) in {primary, middle}.
             key pupil(N, _, _).
             compl school(S, primary, D) ; true.
             fact school(goethe, evening, merano).
             fact pupil(john, c1, goethe).
             fact pupil(john, c2, dante).",
        );
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.iter().any(|d| d.code == Code::DomainViolationFact));
        assert!(errors.iter().any(|d| d.code == Code::KeyViolationFacts));
        // Violating facts are located at their `fact` items.
        assert!(errors.iter().all(|d| d.span.is_some()), "{errors:?}");
    }

    #[test]
    fn unused_statement_is_reported() {
        let (diags, _) = analyze(
            "compl pupil(N, C, S) ; school(S, T, merano).
             compl school(S, T, D) ; true.
             compl teacher(T, S) ; true.
             query q(N) :- pupil(N, C, S).",
        );
        let unused: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::UnusedStatement)
            .collect();
        // teacher is unreachable; pupil and school (through the
        // condition bridge) are used.
        assert_eq!(unused.len(), 1, "{diags:?}");
        assert!(unused[0].message.contains("teacher"));
    }

    #[test]
    fn diagnostics_are_sorted_by_source_position() {
        let (diags, _) = analyze(
            "compl pupil(N, C, S) ; class(C, S, L, T).
             query q(N) :- pupil(N, C, S), nosuch(N).",
        );
        let spanned: Vec<usize> = diags
            .iter()
            .filter_map(|d| d.span.map(|s| s.start))
            .collect();
        let mut sorted = spanned.clone();
        sorted.sort_unstable();
        assert_eq!(spanned, sorted);
    }

    #[test]
    fn mixed_arity_documents_report_m012() {
        // The parser rejects mixed arities outright, so M012 is reachable
        // only for programmatically built documents (e.g. server sessions
        // reassembled from requests) — this doubles as its golden: the
        // exact spanless rendering.
        let mut v = Vocabulary::new();
        let p1 = v.pred("p", 1);
        let p2 = v.pred("p", 2);
        let a = v.cst("a");
        let mut doc = magik_parser::Document::default();
        doc.facts.insert(magik_relalg::Fact::new(p1, vec![a]));
        doc.facts.insert(magik_relalg::Fact::new(p2, vec![a, a]));
        let diags = analyze_document(&doc, &mut v);
        let m012 = diags
            .iter()
            .find(|d| d.code == Code::ArityConflict)
            .expect("M012 fires");
        assert!(
            m012.message.contains("`p`") && m012.message.contains("1 and 2"),
            "{m012:?}"
        );
        let text = render_report(std::slice::from_ref(m012), None);
        assert!(text.contains("warning[M012]"), "{text}");
    }

    #[test]
    fn spanless_statement_analysis_works_for_programmatic_input() {
        // The server path: statements without any source text.
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let q = v.pred("q", 1);
        let x = v.var("X");
        let tcs = magik_completeness::TcSet::new(vec![magik_completeness::TcStatement::new(
            magik_relalg::Atom::new(p, vec![magik_relalg::Term::Var(x)]),
            vec![magik_relalg::Atom::new(q, vec![magik_relalg::Term::Var(x)])],
        )]);
        let diags = analyze_statements(&tcs, &magik_completeness::ConstraintSet::default(), &v);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::UnguaranteeableCondition));
        assert!(diags.iter().all(|d| d.span.is_none()));
        // And they still render without a source.
        let text = render_report(&diags, None);
        assert!(text.contains("M004"), "{text}");
    }
}
