//! Diagnostics: stable codes, severities, locations, and the text/JSON
//! renderers.
//!
//! Every analysis in this crate reports [`Diagnostic`]s. A diagnostic has
//! a stable [`Code`] (`M001`–`M025` — tools may match on these, so codes
//! are never reused or renumbered; see `ANALYSES.md` for the catalogue),
//! a [`Severity`], a logical [`Location`] inside the analyzed document,
//! and — when the document was parsed from source — a byte [`Span`] that
//! the text renderer turns into a rustc-style excerpt with a caret
//! underline. Passes that know how to repair a finding attach
//! [`Suggestion`]s; the [`crate::apply_fixes`] driver applies the
//! machine-applicable ones.

use std::fmt;

use magik_parser::{LineIndex, Span};

/// How serious a diagnostic is. Ordered: `Info < Warning < Error`, so a
/// deny threshold is a simple comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: bounds, structural notes. Never wrong to ignore.
    Info,
    /// Suspicious: almost certainly an authoring mistake, but the
    /// reasoning machinery still produces *some* (often trivial) answer.
    Warning,
    /// Definitely wrong: the document contradicts itself or cannot be
    /// processed meaningfully.
    Error,
}

impl Severity {
    /// The lowercase name (`info`, `warning`, `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a severity name as used by `--deny <level>` (accepts both
    /// singular and plural spellings).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" | "infos" | "notes" => Some(Severity::Info),
            "warning" | "warnings" => Some(Severity::Warning),
            "error" | "errors" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A stable diagnostic code. The numeric part is permanent: codes are
/// never reused, renumbered, or given a different meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// M001: a statement duplicates an earlier one up to renaming.
    DuplicateStatement,
    /// M002: a statement is subsumed by a strictly more general one.
    SubsumedStatement,
    /// M003: a statement's condition mentions its own head relation.
    SelfConditioned,
    /// M004: a condition mentions a relation no statement guarantees.
    UnguaranteeableCondition,
    /// M005: a statement's condition is unsatisfiable under the
    /// constraints — the statement can never fire (dead).
    DeadStatement,
    /// M006: a query is unsafe (a head variable is missing from the body).
    UnsafeQuery,
    /// M007: a query is unsatisfiable under the constraints (and hence
    /// trivially complete).
    UnsatisfiableQuery,
    /// M008: a query atom's relation is transitively unguaranteeable —
    /// no complete specialization exists, the k-MCS set is empty.
    DeadQueryAtom,
    /// M009: a head variable occurs only in atoms over relations that
    /// head no statement — the MCG does not exist.
    NoMcg,
    /// M010: bound on MCG fixpoint iterations (and MCS size, if any).
    FixpointBound,
    /// M011: a query atom's relation occurs nowhere else in the document.
    UnknownRelation,
    /// M012: one relation name is used at two different arities.
    ArityConflict,
    /// M013: a stored fact violates a finite-domain constraint.
    DomainViolationFact,
    /// M014: two stored facts violate a key constraint.
    KeyViolationFacts,
    /// M015: the statement dependency graph has a cycle and is not weakly
    /// acyclic — MCS sizes are unbounded (Theorem 17).
    UnboundedRecursion,
    /// M016: the statement dependency graph has a cycle but is weakly
    /// acyclic — recursive, yet MCS sizes stay bounded.
    BoundedRecursion,
    /// M017: a statement (a rule of the Section 5 encoding) is not
    /// reachable from any query in the document.
    UnusedStatement,
    /// M018: a live-session statement duplicates or is subsumed by
    /// another statement of the live set.
    RedundantLiveStatement,
    /// M019: a live-session statement's condition is unsatisfiable under
    /// the session's integrity constraints.
    UnsatisfiableLiveStatement,
    /// M020: a relation has asserted facts but no statement guarantees
    /// any part of it — a completeness blind spot.
    CompletenessBlindSpot,
    /// M021: a live-session statement's pattern matches zero stored
    /// facts — the guarantee is currently vacuous.
    VacuousStatement,
    /// M022: a query atom's relation is transitively unguaranteeable in
    /// the live session — the check is trivially incomplete for every
    /// instance (greatest-fixpoint coverage analysis).
    TriviallyIncompleteCheck,
    /// M023: the session stores facts but holds no statements at all —
    /// every completeness check is trivially incomplete.
    EmptyStatementSet,
    /// M024: one relation name is interned at two different arities in
    /// the live session vocabulary.
    LiveArityConflict,
    /// M025: a checked query is incomplete, and a minimal set of
    /// additional completeness statements that would make it complete is
    /// attached as the suggested repair.
    IncompleteWithRepair,
}

impl Code {
    /// The stable code string, e.g. `"M004"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DuplicateStatement => "M001",
            Code::SubsumedStatement => "M002",
            Code::SelfConditioned => "M003",
            Code::UnguaranteeableCondition => "M004",
            Code::DeadStatement => "M005",
            Code::UnsafeQuery => "M006",
            Code::UnsatisfiableQuery => "M007",
            Code::DeadQueryAtom => "M008",
            Code::NoMcg => "M009",
            Code::FixpointBound => "M010",
            Code::UnknownRelation => "M011",
            Code::ArityConflict => "M012",
            Code::DomainViolationFact => "M013",
            Code::KeyViolationFacts => "M014",
            Code::UnboundedRecursion => "M015",
            Code::BoundedRecursion => "M016",
            Code::UnusedStatement => "M017",
            Code::RedundantLiveStatement => "M018",
            Code::UnsatisfiableLiveStatement => "M019",
            Code::CompletenessBlindSpot => "M020",
            Code::VacuousStatement => "M021",
            Code::TriviallyIncompleteCheck => "M022",
            Code::EmptyStatementSet => "M023",
            Code::LiveArityConflict => "M024",
            Code::IncompleteWithRepair => "M025",
        }
    }

    /// Every registered code, in numeric order. The catalogue checks and
    /// `--explain` completion iterate this.
    pub const ALL: [Code; 25] = [
        Code::DuplicateStatement,
        Code::SubsumedStatement,
        Code::SelfConditioned,
        Code::UnguaranteeableCondition,
        Code::DeadStatement,
        Code::UnsafeQuery,
        Code::UnsatisfiableQuery,
        Code::DeadQueryAtom,
        Code::NoMcg,
        Code::FixpointBound,
        Code::UnknownRelation,
        Code::ArityConflict,
        Code::DomainViolationFact,
        Code::KeyViolationFacts,
        Code::UnboundedRecursion,
        Code::BoundedRecursion,
        Code::UnusedStatement,
        Code::RedundantLiveStatement,
        Code::UnsatisfiableLiveStatement,
        Code::CompletenessBlindSpot,
        Code::VacuousStatement,
        Code::TriviallyIncompleteCheck,
        Code::EmptyStatementSet,
        Code::LiveArityConflict,
        Code::IncompleteWithRepair,
    ];

    /// Parses a stable code string (`"M004"`, case-insensitive on the
    /// letter) back into a [`Code`].
    pub fn parse(s: &str) -> Option<Code> {
        let s = s.trim();
        Code::ALL
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// A short, stable title for the code, used as the SARIF rule
    /// description and as the `--explain` header.
    pub fn title(self) -> &'static str {
        match self {
            Code::DuplicateStatement => "statement duplicates an earlier one up to renaming",
            Code::SubsumedStatement => "statement is subsumed by a more general one",
            Code::SelfConditioned => "statement conditions on its own head relation",
            Code::UnguaranteeableCondition => "condition relation is never guaranteed",
            Code::DeadStatement => "statement can never fire under the constraints",
            Code::UnsafeQuery => "query is not range-restricted",
            Code::UnsatisfiableQuery => "query is unsatisfiable under the constraints",
            Code::DeadQueryAtom => "query atom's relation is transitively unguaranteeable",
            Code::NoMcg => "the minimal complete generalization does not exist",
            Code::FixpointBound => "static bound on MCG fixpoint iterations and MCS sizes",
            Code::UnknownRelation => "relation occurs nowhere else in the document",
            Code::ArityConflict => "relation name used at two different arities",
            Code::DomainViolationFact => "stored fact violates a finite-domain constraint",
            Code::KeyViolationFacts => "stored facts violate a key constraint",
            Code::UnboundedRecursion => "cyclic statement set with unbounded MCS sizes",
            Code::BoundedRecursion => "cyclic but weakly acyclic statement set",
            Code::UnusedStatement => "statement is unreachable from every query",
            Code::RedundantLiveStatement => "live statement is redundant in the session set",
            Code::UnsatisfiableLiveStatement => {
                "live statement can never fire under the session constraints"
            }
            Code::CompletenessBlindSpot => "relation has asserted facts but no covering statement",
            Code::VacuousStatement => "live statement matches no stored facts",
            Code::TriviallyIncompleteCheck => {
                "completeness check is trivially incomplete for every instance"
            }
            Code::EmptyStatementSet => "session stores facts but holds no statements",
            Code::LiveArityConflict => "relation name interned at two arities in the session",
            Code::IncompleteWithRepair => "query is incomplete; a minimal repair is suggested",
        }
    }

    /// The default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::UnsafeQuery | Code::DomainViolationFact | Code::KeyViolationFacts => {
                Severity::Error
            }
            Code::FixpointBound
            | Code::BoundedRecursion
            | Code::UnusedStatement
            | Code::VacuousStatement
            | Code::EmptyStatementSet
            | Code::IncompleteWithRepair => Severity::Info,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which part of a TC statement a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StatementPart {
    /// The whole statement.
    Whole,
    /// The head atom.
    Head,
    /// The `i`-th condition atom.
    Condition(usize),
}

/// Which part of a query a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryPart {
    /// The whole query.
    Whole,
    /// The head atom.
    Head,
    /// The `i`-th body atom.
    Atom(usize),
}

/// The logical position of a diagnostic inside the analyzed document.
/// Indices are document order (the same order the parser and
/// [`magik_parser::DocumentSpans`] use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Location {
    /// The whole document (structural diagnostics).
    Document,
    /// A TC statement (or part of one).
    Statement {
        /// Statement index in document order.
        index: usize,
        /// The part pointed at.
        part: StatementPart,
    },
    /// A query (or part of one).
    Query {
        /// Query index in document order.
        index: usize,
        /// The part pointed at.
        part: QueryPart,
    },
    /// A `fact` item, by parse order.
    Fact {
        /// Fact index in parse order.
        index: usize,
    },
    /// A `domain` item, by parse order.
    Domain {
        /// Domain index in parse order.
        index: usize,
    },
    /// A `key` item, by parse order.
    Key {
        /// Key index in parse order.
        index: usize,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Document => f.write_str("document"),
            Location::Statement { index, part } => {
                write!(f, "statement [{index}]")?;
                match part {
                    StatementPart::Whole => Ok(()),
                    StatementPart::Head => f.write_str(", head"),
                    StatementPart::Condition(i) => write!(f, ", condition atom {i}"),
                }
            }
            Location::Query { index, part } => {
                write!(f, "query [{index}]")?;
                match part {
                    QueryPart::Whole => Ok(()),
                    QueryPart::Head => f.write_str(", head"),
                    QueryPart::Atom(i) => write!(f, ", body atom {i}"),
                }
            }
            Location::Fact { index } => write!(f, "fact [{index}]"),
            Location::Domain { index } => write!(f, "domain [{index}]"),
            Location::Key { index } => write!(f, "key [{index}]"),
        }
    }
}

/// Whether a [`Suggestion`] may be applied without human review.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Applicability {
    /// The fix is semantics-preserving (or removes provably-inert text);
    /// `--fix` applies it automatically.
    MachineApplicable,
    /// The fix is a plausible repair but may change meaning; it is shown
    /// but never auto-applied.
    MaybeIncorrect,
}

impl Applicability {
    /// The lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Applicability::MachineApplicable => "machine-applicable",
            Applicability::MaybeIncorrect => "maybe-incorrect",
        }
    }
}

/// A structured repair attached to a [`Diagnostic`]: replace the byte
/// range `span` of the source with `replacement` (empty to delete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// Human-readable description of the edit (`"delete this statement"`).
    pub message: String,
    /// Byte range of the source to replace.
    pub span: Span,
    /// The replacement text (may be empty, meaning deletion).
    pub replacement: String,
    /// Whether `--fix` may apply this edit unattended.
    pub applicability: Applicability,
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (usually [`Code::severity`], but callers may escalate).
    pub severity: Severity,
    /// The primary message (names already resolved — self-contained).
    pub message: String,
    /// Logical position in the document.
    pub location: Location,
    /// Byte range in the source, when the document was parsed from text.
    pub span: Option<Span>,
    /// Supplementary notes rendered under the excerpt.
    pub notes: Vec<String>,
    /// Structured repairs; empty when the pass knows no fix.
    pub suggestions: Vec<Suggestion>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity and no notes.
    pub fn new(code: Code, location: Location, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            location,
            span: None,
            notes: Vec::new(),
            suggestions: Vec::new(),
        }
    }

    /// Adds a note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attaches a repair (builder style).
    pub fn with_suggestion(mut self, suggestion: Suggestion) -> Diagnostic {
        self.suggestions.push(suggestion);
        self
    }
}

/// A named source text plus its line index, for rendering excerpts.
#[derive(Debug, Clone)]
pub struct SourceFile<'a> {
    /// Display name (path) used in `--> name:line:col` headers.
    pub name: &'a str,
    /// The source text the document was parsed from.
    pub text: &'a str,
    index: LineIndex,
}

impl<'a> SourceFile<'a> {
    /// Wraps a source text under a display name.
    pub fn new(name: &'a str, text: &'a str) -> SourceFile<'a> {
        SourceFile {
            name,
            text,
            index: LineIndex::new(text),
        }
    }

    /// The line index of the text.
    pub fn line_index(&self) -> &LineIndex {
        &self.index
    }
}

/// Renders one diagnostic in rustc style:
///
/// ```text
/// warning[M004]: condition relation `class` is never guaranteed
///   --> testdata/bad/trap.magik:3:24
///    |
///  3 | compl pupil(N, C, S) ; class(C, S, L, T).
///    |                        ^^^^^^^^^^^^^^^^^
///    = note: no statement heads `class`
/// ```
///
/// Without a source (or without a span) the excerpt is replaced by the
/// logical location.
pub fn render_text(diag: &Diagnostic, source: Option<&SourceFile<'_>>) -> String {
    let mut out = format!("{}[{}]: {}\n", diag.severity, diag.code, diag.message);
    match (diag.span, source) {
        (Some(span), Some(src)) => {
            let (line, col) = src.index.line_col(span.start);
            out.push_str(&format!("  --> {}:{line}:{col}\n", src.name));
            let range = src.index.line_range(line);
            let text = &src.text[range.start..range.end];
            let gutter = line.to_string();
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad} |\n{gutter} | {text}\n"));
            // Underline within the first line of the span only.
            let from = span.start - range.start;
            let to = span.end.min(range.end).max(span.start) - range.start;
            let carets = "^".repeat((to - from).max(1));
            out.push_str(&format!("{pad} | {}{carets}\n", " ".repeat(from)));
            for note in &diag.notes {
                out.push_str(&format!("{pad} = note: {note}\n"));
            }
            for s in &diag.suggestions {
                out.push_str(&format!(
                    "{pad} = help: {} ({})\n",
                    s.message,
                    s.applicability.as_str()
                ));
            }
        }
        _ => {
            out.push_str(&format!("  --> {}\n", diag.location));
            for note in &diag.notes {
                out.push_str(&format!("  = note: {note}\n"));
            }
            for s in &diag.suggestions {
                out.push_str(&format!(
                    "  = help: {} ({})\n",
                    s.message,
                    s.applicability.as_str()
                ));
            }
        }
    }
    out
}

/// Renders a full report in text form: each diagnostic followed by a
/// one-line summary (`N errors, M warnings, K infos`).
pub fn render_report(diags: &[Diagnostic], source: Option<&SourceFile<'_>>) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_text(d, source));
        out.push('\n');
    }
    out.push_str(&summary_line(diags));
    out.push('\n');
    out
}

/// The `N errors, M warnings, K infos` summary line.
pub fn summary_line(diags: &[Diagnostic]) -> String {
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    format!(
        "{} errors, {} warnings, {} infos",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info)
    )
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_location(loc: &Location) -> String {
    match loc {
        Location::Document => r#"{"kind":"document"}"#.to_string(),
        Location::Statement { index, part } => {
            let (part_name, atom) = match part {
                StatementPart::Whole => ("whole", None),
                StatementPart::Head => ("head", None),
                StatementPart::Condition(i) => ("condition", Some(*i)),
            };
            match atom {
                Some(i) => format!(
                    r#"{{"kind":"statement","index":{index},"part":"{part_name}","atom":{i}}}"#
                ),
                None => {
                    format!(r#"{{"kind":"statement","index":{index},"part":"{part_name}"}}"#)
                }
            }
        }
        Location::Query { index, part } => {
            let (part_name, atom) = match part {
                QueryPart::Whole => ("whole", None),
                QueryPart::Head => ("head", None),
                QueryPart::Atom(i) => ("body", Some(*i)),
            };
            match atom {
                Some(i) => {
                    format!(r#"{{"kind":"query","index":{index},"part":"{part_name}","atom":{i}}}"#)
                }
                None => format!(r#"{{"kind":"query","index":{index},"part":"{part_name}"}}"#),
            }
        }
        Location::Fact { index } => format!(r#"{{"kind":"fact","index":{index}}}"#),
        Location::Domain { index } => format!(r#"{{"kind":"domain","index":{index}}}"#),
        Location::Key { index } => format!(r#"{{"kind":"key","index":{index}}}"#),
    }
}

/// Renders a full report as a single JSON object:
///
/// ```json
/// {"diagnostics": [{"code": "M004", "severity": "warning", "message": "…",
///   "location": {"kind": "statement", "index": 1, "part": "condition", "atom": 0},
///   "span": {"start": 57, "end": 74, "line": 3, "col": 24},
///   "notes": ["…"]}],
///  "summary": {"errors": 0, "warnings": 1, "infos": 0}}
/// ```
///
/// `span` is `null` for diagnostics without a source position; `line` and
/// `col` are present only when a source was supplied.
pub fn render_json(diags: &[Diagnostic], source: Option<&SourceFile<'_>>) -> String {
    let mut items = Vec::with_capacity(diags.len());
    for d in diags {
        let span = match d.span {
            Some(s) => match source {
                Some(src) => {
                    let (line, col) = src.index.line_col(s.start);
                    format!(
                        r#"{{"start":{},"end":{},"line":{line},"col":{col}}}"#,
                        s.start, s.end
                    )
                }
                None => format!(r#"{{"start":{},"end":{}}}"#, s.start, s.end),
            },
            None => "null".to_string(),
        };
        let notes = d
            .notes
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(",");
        let suggestions = d
            .suggestions
            .iter()
            .map(|s| {
                format!(
                    r#"{{"message":"{}","span":{{"start":{},"end":{}}},"replacement":"{}","applicability":"{}"}}"#,
                    json_escape(&s.message),
                    s.span.start,
                    s.span.end,
                    json_escape(&s.replacement),
                    s.applicability.as_str()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        items.push(format!(
            r#"{{"code":"{}","severity":"{}","message":"{}","location":{},"span":{},"notes":[{}],"suggestions":[{}]}}"#,
            d.code,
            d.severity,
            json_escape(&d.message),
            json_location(&d.location),
            span,
            notes,
            suggestions
        ));
    }
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    format!(
        r#"{{"diagnostics":[{}],"summary":{{"errors":{},"warnings":{},"infos":{}}}}}"#,
        items.join(","),
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_backs_deny_levels() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("warnings"), Some(Severity::Warning));
        assert_eq!(Severity::parse("error"), Some(Severity::Error));
        assert_eq!(Severity::parse("bogus"), None);
    }

    #[test]
    fn text_rendering_underlines_the_span() {
        let src = SourceFile::new("spec.magik", "compl p(X) ; q(X).\n");
        let mut d = Diagnostic::new(
            Code::UnguaranteeableCondition,
            Location::Statement {
                index: 0,
                part: StatementPart::Condition(0),
            },
            "condition relation `q` is never guaranteed",
        )
        .with_note("no statement heads `q`");
        d.span = Some(Span::new(13, 17));
        let text = render_text(&d, Some(&src));
        assert!(text.contains("warning[M004]"), "{text}");
        assert!(text.contains("--> spec.magik:1:14"), "{text}");
        assert!(text.contains("compl p(X) ; q(X)."), "{text}");
        assert!(text.contains("^^^^"), "{text}");
        assert!(text.contains("= note: no statement heads `q`"), "{text}");
    }

    #[test]
    fn text_rendering_without_span_names_the_location() {
        let d = Diagnostic::new(
            Code::UnsafeQuery,
            Location::Query {
                index: 2,
                part: QueryPart::Whole,
            },
            "head variable `X` does not occur in the body",
        );
        let text = render_text(&d, None);
        assert!(text.contains("error[M006]"), "{text}");
        assert!(text.contains("--> query [2]"), "{text}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let src = SourceFile::new("spec.magik", "compl p(X) ; q(X).\n");
        let mut d = Diagnostic::new(
            Code::UnguaranteeableCondition,
            Location::Statement {
                index: 0,
                part: StatementPart::Condition(0),
            },
            "a \"quoted\" message\nwith a newline",
        );
        d.span = Some(Span::new(13, 17));
        let json = render_json(&[d], Some(&src));
        assert!(json.contains(r#""code":"M004""#), "{json}");
        assert!(json.contains(r#""severity":"warning""#), "{json}");
        assert!(json.contains(r#"\"quoted\""#), "{json}");
        assert!(json.contains(r#"\n"#), "{json}");
        assert!(
            json.contains(r#""span":{"start":13,"end":17,"line":1,"col":14}"#),
            "{json}"
        );
        assert!(
            json.contains(
                r#""location":{"kind":"statement","index":0,"part":"condition","atom":0}"#
            ),
            "{json}"
        );
        assert!(
            json.contains(r#""summary":{"errors":0,"warnings":1,"infos":0}"#),
            "{json}"
        );
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            Code::DuplicateStatement,
            Code::SubsumedStatement,
            Code::SelfConditioned,
            Code::UnguaranteeableCondition,
            Code::DeadStatement,
            Code::UnsafeQuery,
            Code::UnsatisfiableQuery,
            Code::DeadQueryAtom,
            Code::NoMcg,
            Code::FixpointBound,
            Code::UnknownRelation,
            Code::ArityConflict,
            Code::DomainViolationFact,
            Code::KeyViolationFacts,
            Code::UnboundedRecursion,
            Code::BoundedRecursion,
            Code::UnusedStatement,
            Code::RedundantLiveStatement,
            Code::UnsatisfiableLiveStatement,
            Code::CompletenessBlindSpot,
            Code::VacuousStatement,
            Code::TriviallyIncompleteCheck,
            Code::EmptyStatementSet,
            Code::LiveArityConflict,
            Code::IncompleteWithRepair,
        ];
        let strs: std::collections::BTreeSet<&str> = all.iter().map(|c| c.as_str()).collect();
        assert_eq!(strs.len(), all.len());
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.as_str(), format!("M{:03}", i + 1));
        }
        assert_eq!(Code::ALL.as_slice(), all.as_slice());
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert_eq!(Code::parse(&c.as_str().to_ascii_lowercase()), Some(c));
        }
        assert_eq!(Code::parse("M099"), None);
        assert_eq!(Code::parse("bogus"), None);
    }

    #[test]
    fn suggestions_render_in_text_and_json() {
        let src = SourceFile::new("spec.magik", "compl p(X) ; q(X).\n");
        let mut d = Diagnostic::new(
            Code::DuplicateStatement,
            Location::Statement {
                index: 0,
                part: StatementPart::Whole,
            },
            "statement duplicates statement [0]",
        )
        .with_suggestion(Suggestion {
            message: "delete this statement".to_string(),
            span: Span::new(0, 18),
            replacement: String::new(),
            applicability: Applicability::MachineApplicable,
        });
        d.span = Some(Span::new(0, 18));
        let text = render_text(&d, Some(&src));
        assert!(
            text.contains("= help: delete this statement (machine-applicable)"),
            "{text}"
        );
        let json = render_json(&[d], Some(&src));
        assert!(
            json.contains(
                r#""suggestions":[{"message":"delete this statement","span":{"start":0,"end":18},"replacement":"","applicability":"machine-applicable"}]"#
            ),
            "{json}"
        );
    }
}
