//! The analysis passes: statement checks, query checks, vocabulary and
//! fact checks, assembled by [`analyze_document`].

use std::collections::{BTreeMap, BTreeSet};

use magik_completeness::keys::ChaseOutcome;
use magik_completeness::lint::Lint;
use magik_completeness::{chase_query, lint, ConstraintSet, TcSet};
use magik_parser::{Document, DocumentSpans, Span};
use magik_relalg::{DisplayWith, Pred, Query, Vocabulary};

use crate::coverage::guaranteeable_relations;
use crate::diag::{Code, Diagnostic, Location, QueryPart, StatementPart};
use crate::encoding::encoding_diags;

/// Analyzes a whole parsed document: statements (M001–M005), queries
/// (M006–M010), vocabulary (M011–M012), stored facts (M013–M014), and
/// the Section 5 Datalog encoding (M015–M017). Diagnostics come back
/// with spans resolved against the document's side tables and sorted in
/// source order.
///
/// The vocabulary is mutable because the encoding pass interns the
/// `R@i`/`R@a` relation variants; no other name is added.
pub fn analyze_document(doc: &Document, vocab: &mut Vocabulary) -> Vec<Diagnostic> {
    let mut diags = analyze_statements(&doc.tcs, &doc.constraints, vocab);

    // M011 first: an unknown relation suppresses the dead-relation
    // diagnostic on the same atom (the typo explains the deadness).
    let unknown = unknown_relation_atoms(doc);
    for &(qi, ai) in &unknown {
        let atom = &doc.queries[qi].body[ai];
        diags.push(
            Diagnostic::new(
                Code::UnknownRelation,
                Location::Query {
                    index: qi,
                    part: QueryPart::Atom(ai),
                },
                format!(
                    "relation `{}/{}` occurs nowhere else in the document",
                    vocab.pred_name(atom.pred),
                    vocab.arity(atom.pred)
                ),
            )
            .with_note(
                "no statement, fact or constraint mentions it — is the name misspelled?"
                    .to_string(),
            ),
        );
    }

    let alive = guaranteeable_relations(&doc.tcs);
    for (i, q) in doc.queries.iter().enumerate() {
        let skip: BTreeSet<usize> = unknown
            .iter()
            .filter(|&&(qi, _)| qi == i)
            .map(|&(_, ai)| ai)
            .collect();
        diags.extend(query_diags(
            i,
            q,
            &doc.tcs,
            &doc.constraints,
            &alive,
            &skip,
            vocab,
        ));
    }

    diags.extend(arity_conflicts(doc, vocab));
    diags.extend(fact_diags(doc, vocab));
    diags.extend(encoding_diags(&doc.tcs, &doc.queries, vocab));

    for d in &mut diags {
        d.span = resolve_span(&d.location, &doc.spans);
    }
    crate::fix::attach_suggestions(&mut diags, doc, vocab);
    diags.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            d.span
                .map_or((usize::MAX, usize::MAX), |s| (s.start, s.end))
        };
        key(a)
            .cmp(&key(b))
            .then_with(|| a.location.cmp(&b.location))
            .then_with(|| a.code.cmp(&b.code))
    });
    diags
}

/// Statement-set checks M001–M005. Diagnostics carry logical locations
/// only (no spans) — [`analyze_document`] resolves spans afterwards.
pub fn analyze_statements(
    tcs: &TcSet,
    constraints: &ConstraintSet,
    vocab: &Vocabulary,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let statements = tcs.statements();
    for l in lint(tcs) {
        out.push(match l {
            Lint::Duplicate { first, second } => Diagnostic::new(
                Code::DuplicateStatement,
                Location::Statement {
                    index: second,
                    part: StatementPart::Whole,
                },
                format!(
                    "statement duplicates statement [{first}] `{}` up to renaming",
                    statements[first].display(vocab)
                ),
            ),
            Lint::Subsumed { subsumed, by } => Diagnostic::new(
                Code::SubsumedStatement,
                Location::Statement {
                    index: subsumed,
                    part: StatementPart::Whole,
                },
                format!(
                    "statement is subsumed by the more general statement [{by}] `{}`",
                    statements[by].display(vocab)
                ),
            )
            .with_note("everything this statement guarantees is already guaranteed"),
            Lint::SelfConditioned { statement } => {
                let c = &statements[statement];
                let part = c
                    .condition
                    .iter()
                    .position(|g| g.pred == c.head.pred)
                    .map_or(StatementPart::Whole, StatementPart::Condition);
                Diagnostic::new(
                    Code::SelfConditioned,
                    Location::Statement {
                        index: statement,
                        part,
                    },
                    format!(
                        "statement conditions on its own relation `{}`",
                        vocab.pred_name(c.head.pred)
                    ),
                )
                .with_note(
                    "the guarantee never bottoms out: maximal complete specializations \
                     may not exist (cf. Theorem 17)",
                )
            }
            Lint::UnguaranteeableCondition { statement, pred } => {
                let c = &statements[statement];
                let part = c
                    .condition
                    .iter()
                    .position(|g| g.pred == pred)
                    .map_or(StatementPart::Whole, StatementPart::Condition);
                Diagnostic::new(
                    Code::UnguaranteeableCondition,
                    Location::Statement {
                        index: statement,
                        part,
                    },
                    format!(
                        "condition relation `{}` is never guaranteed",
                        vocab.pred_name(pred)
                    ),
                )
                .with_note(format!(
                    "no statement heads `{}`: specializations through this condition \
                     can never be completed",
                    vocab.pred_name(pred)
                ))
            }
        });
    }

    // M005: dead statements — the statement pattern itself is
    // unsatisfiable under the integrity constraints, so it can never
    // fire and its guarantee is vacuous.
    for (i, c) in statements.iter().enumerate() {
        let aq = c.associated_query();
        let location = Location::Statement {
            index: i,
            part: StatementPart::Whole,
        };
        if constraints.variable_domains(&aq).is_err() {
            out.push(
                Diagnostic::new(
                    Code::DeadStatement,
                    location,
                    "statement is dead: its atoms violate the finite-domain constraints",
                )
                .with_note("no valid ideal instance matches the pattern; the guarantee is vacuous"),
            );
        } else if matches!(
            chase_query(&aq, constraints.keys()),
            ChaseOutcome::Unsatisfiable
        ) {
            out.push(
                Diagnostic::new(
                    Code::DeadStatement,
                    location,
                    "statement is dead: its atoms are inconsistent with the key constraints",
                )
                .with_note("the key chase fails on distinct constants; the guarantee is vacuous"),
            );
        }
    }
    out
}

/// Query checks M006–M010 for a single query. `index` is the query's
/// document position, used only for the diagnostic locations.
pub fn analyze_query(
    index: usize,
    q: &Query,
    tcs: &TcSet,
    constraints: &ConstraintSet,
    vocab: &Vocabulary,
) -> Vec<Diagnostic> {
    let alive = guaranteeable_relations(tcs);
    query_diags(index, q, tcs, constraints, &alive, &BTreeSet::new(), vocab)
}

fn query_diags(
    index: usize,
    q: &Query,
    tcs: &TcSet,
    constraints: &ConstraintSet,
    alive: &BTreeSet<Pred>,
    skip_atoms: &BTreeSet<usize>,
    vocab: &Vocabulary,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let name = vocab.name(q.name);

    // M006: safety / range restriction. An unsafe query cannot be
    // evaluated or generalized, so the remaining checks are skipped.
    if !q.is_safe() {
        let missing: Vec<&str> = q
            .head_vars()
            .difference(&q.body_vars())
            .map(|&v| vocab.var_name(v))
            .collect();
        out.push(
            Diagnostic::new(
                Code::UnsafeQuery,
                Location::Query {
                    index,
                    part: QueryPart::Head,
                },
                format!(
                    "query `{name}` is not range-restricted: head variable{} {} never occur{} \
                     in the body",
                    if missing.len() == 1 { "" } else { "s" },
                    missing
                        .iter()
                        .map(|m| format!("`{m}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    if missing.len() == 1 { "s" } else { "" },
                ),
            )
            .with_note("the query cannot be evaluated; every head variable must be bound"),
        );
        return out;
    }

    // M007: unsatisfiability under the integrity constraints.
    let mut unsat = false;
    if constraints.variable_domains(q).is_err() {
        unsat = true;
        out.push(
            Diagnostic::new(
                Code::UnsatisfiableQuery,
                Location::Query {
                    index,
                    part: QueryPart::Whole,
                },
                format!("query `{name}` is unsatisfiable under the finite-domain constraints"),
            )
            .with_note("it has no answers over any valid instance and is trivially complete"),
        );
    } else if matches!(
        chase_query(q, constraints.keys()),
        ChaseOutcome::Unsatisfiable
    ) {
        unsat = true;
        out.push(
            Diagnostic::new(
                Code::UnsatisfiableQuery,
                Location::Query {
                    index,
                    part: QueryPart::Whole,
                },
                format!("query `{name}` is inconsistent with the key constraints"),
            )
            .with_note(
                "it has no answers over any key-consistent instance and is trivially complete",
            ),
        );
    }

    if !unsat && !q.body.is_empty() {
        // M008: dead-relation atoms — no complete specialization exists.
        let headed: BTreeSet<Pred> = tcs.statements().iter().map(|c| c.head.pred).collect();
        for (ai, atom) in q.body.iter().enumerate() {
            if skip_atoms.contains(&ai) || alive.contains(&atom.pred) {
                continue;
            }
            let pred_name = vocab.pred_name(atom.pred);
            let reason = if headed.contains(&atom.pred) {
                format!(
                    "every statement guaranteeing `{pred_name}` conditions on a relation that \
                     is itself transitively unguaranteeable"
                )
            } else {
                format!("no statement heads `{pred_name}`")
            };
            out.push(
                Diagnostic::new(
                    Code::DeadQueryAtom,
                    Location::Query {
                        index,
                        part: QueryPart::Atom(ai),
                    },
                    format!(
                        "no complete query can contain `{}`: relation `{pred_name}` is \
                         transitively unguaranteeable",
                        atom.display(vocab)
                    ),
                )
                .with_note(reason)
                .with_note("the k-MCS set of this query is empty for every k"),
            );
        }

        // M009: a head variable occurring only in atoms over relations
        // that head no statement loses all its occurrences under G_C —
        // the MCG does not exist.
        for &v in &q.head_vars() {
            let occurrences: Vec<&magik_relalg::Atom> = q
                .body
                .iter()
                .filter(|a| a.args.contains(&magik_relalg::Term::Var(v)))
                .collect();
            if !occurrences.is_empty() && occurrences.iter().all(|a| !headed.contains(&a.pred)) {
                out.push(
                    Diagnostic::new(
                        Code::NoMcg,
                        Location::Query {
                            index,
                            part: QueryPart::Head,
                        },
                        format!(
                            "head variable `{}` occurs only in atoms whose relations head no \
                             statement: the MCG of `{name}` does not exist",
                            vocab.var_name(v)
                        ),
                    )
                    .with_note(
                        "generalization drops every atom that can bind it, leaving the head unsafe",
                    ),
                );
            }
        }
    }

    // M010: static resource bounds for the reasoning algorithms.
    if !unsat && !q.body.is_empty() && !tcs.is_empty() {
        let iters = q.body.len() + 1;
        let mut d = Diagnostic::new(
            Code::FixpointBound,
            Location::Query {
                index,
                part: QueryPart::Whole,
            },
            format!(
                "the MCG fixpoint for `{name}` converges within {iters} iterations \
                 (each pass drops at least one of the {} body atoms or stops)",
                q.body.len()
            ),
        );
        d = match tcs.mcs_size_bound(q) {
            Some(bound) => d.with_note(format!(
                "any maximal complete specialization has at most {bound} body atoms (Theorem 18)"
            )),
            None => d.with_note(
                "the statement set is cyclic: no general bound on MCS sizes (Theorem 17)",
            ),
        };
        out.push(d);
    }
    out
}

/// Query body atoms whose relation occurs nowhere else in the document
/// (M011). Only meaningful when the document carries completeness
/// metadata at all — with no statements every relation would be
/// "unknown" and the diagnostic pure noise.
fn unknown_relation_atoms(doc: &Document) -> Vec<(usize, usize)> {
    if doc.tcs.is_empty() {
        return Vec::new();
    }
    let mut occurrences: BTreeMap<Pred, usize> = BTreeMap::new();
    let mut count = |p: Pred| *occurrences.entry(p).or_insert(0) += 1;
    for c in doc.tcs.statements() {
        count(c.head.pred);
        c.condition.iter().for_each(|a| count(a.pred));
    }
    for q in &doc.queries {
        q.body.iter().for_each(|a| count(a.pred));
    }
    for f in doc.facts.iter_facts() {
        count(f.pred);
    }
    for d in doc.constraints.domains() {
        count(d.pred);
    }
    for k in doc.constraints.keys() {
        count(k.pred);
    }
    let mut out = Vec::new();
    for (qi, q) in doc.queries.iter().enumerate() {
        for (ai, atom) in q.body.iter().enumerate() {
            if occurrences.get(&atom.pred) == Some(&1) {
                out.push((qi, ai));
            }
        }
    }
    out
}

/// M012: one relation name used at several arities across the document.
/// A single parse forbids this, but documents assembled incrementally
/// (e.g. over a server session) can reach this state.
fn arity_conflicts(doc: &Document, vocab: &Vocabulary) -> Vec<Diagnostic> {
    let mut used: BTreeSet<Pred> = doc.tcs.signature();
    for q in &doc.queries {
        used.extend(q.body.iter().map(|a| a.pred));
    }
    used.extend(doc.facts.iter_facts().map(|f| f.pred));
    used.extend(doc.constraints.domains().iter().map(|d| d.pred));
    used.extend(doc.constraints.keys().iter().map(|k| k.pred));

    let mut by_name: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for &p in &used {
        by_name
            .entry(vocab.pred_name(p))
            .or_default()
            .insert(vocab.arity(p));
    }
    by_name
        .into_iter()
        .filter(|(_, arities)| arities.len() > 1)
        .map(|(name, arities)| {
            let list = arities
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(" and ");
            Diagnostic::new(
                Code::ArityConflict,
                Location::Document,
                format!("relation name `{name}` is used at arities {list}"),
            )
            .with_note(
                "same-name relations of different arity are unrelated; this is usually a typo",
            )
        })
        .collect()
}

/// M013/M014: stored facts violating the integrity constraints.
fn fact_diags(doc: &Document, vocab: &Vocabulary) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Facts in parse order with their locations when the document was
    // parsed; fall back to instance order for programmatic documents.
    let facts: Vec<(magik_relalg::Fact, Location)> = if doc.spans.facts.is_empty() {
        doc.facts
            .iter_facts()
            .map(|f| (f, Location::Document))
            .collect()
    } else {
        doc.spans
            .facts
            .iter()
            .enumerate()
            .map(|(i, (f, _))| (f.clone(), Location::Fact { index: i }))
            .collect()
    };

    for (fact, location) in &facts {
        for (column, &value) in fact.args.iter().enumerate() {
            let Some(allowed) = doc.constraints.allowed(fact.pred, column) else {
                continue;
            };
            if !allowed.contains(&value) {
                out.push(
                    Diagnostic::new(
                        Code::DomainViolationFact,
                        *location,
                        format!(
                            "fact `{}` violates the finite-domain constraint on column {column} \
                             of `{}`",
                            fact.display(vocab),
                            vocab.pred_name(fact.pred)
                        ),
                    )
                    .with_note(format!(
                        "`{}` is not among the allowed values",
                        value.display(vocab)
                    )),
                );
            }
        }
    }

    for key in doc.constraints.keys() {
        if let Err(violation) = key.check_instance(&doc.facts) {
            let (a, b) = &violation.facts;
            let location = facts
                .iter()
                .find(|(f, _)| f == a || f == b)
                .map_or(Location::Document, |(_, l)| *l);
            out.push(
                Diagnostic::new(
                    Code::KeyViolationFacts,
                    location,
                    format!(
                        "facts `{}` and `{}` agree on the key of `{}` but differ elsewhere",
                        a.display(vocab),
                        b.display(vocab),
                        vocab.pred_name(key.pred)
                    ),
                )
                .with_note(format!("violated key: `{}`", key.display(vocab))),
            );
        }
    }
    out
}

/// Maps a logical location to a span through the document's side tables.
fn resolve_span(loc: &Location, spans: &DocumentSpans) -> Option<Span> {
    match *loc {
        Location::Document => None,
        Location::Statement { index, part } => {
            let s = spans.statements.get(index)?;
            Some(match part {
                StatementPart::Whole => s.item,
                StatementPart::Head => s.head,
                StatementPart::Condition(i) => *s.condition.get(i)?,
            })
        }
        Location::Query { index, part } => {
            let s = spans.queries.get(index)?;
            Some(match part {
                QueryPart::Whole => s.item,
                QueryPart::Head => s.head,
                QueryPart::Atom(i) => *s.body.get(i)?,
            })
        }
        Location::Fact { index } => spans.facts.get(index).map(|(_, s)| *s),
        Location::Domain { index } => spans.domains.get(index).copied(),
        Location::Key { index } => spans.keys.get(index).copied(),
    }
}
