//! Autofix: attaching structured [`Suggestion`]s to diagnostics and the
//! `--fix` fixpoint driver that applies the machine-applicable ones.
//!
//! The driver is deliberately conservative. Each round it
//!
//! 1. parses and analyzes the current text,
//! 2. collects every [`Applicability::MachineApplicable`] suggestion,
//! 3. applies a non-overlapping subset (longest span first, then lowest
//!    start — deterministic conflict resolution),
//! 4. re-parses and re-analyzes the result, and **reverts the whole
//!    round** unless the text still parses and the diagnostic severity
//!    profile `(errors, warnings, infos)` strictly decreased
//!    lexicographically (fixing an error may legitimately surface an
//!    info — e.g. repairing an unsafe query unlocks the M010 bound — so
//!    a raw count comparison would be too strict).
//!
//! Rounds repeat until no suggestion remains or a round is reverted, so
//! [`fix_source`] is a fixpoint: running it on its own output applies
//! zero edits. The progress guard is what makes the crate-level proptest
//! law (`--fix` output re-parses and has strictly fewer diagnostics at
//! the severest level it changed) hold by construction rather than by
//! hope.

use magik_parser::{parse_document, Document, ParseError};
use magik_relalg::{DisplayWith, Term, Vocabulary};

use crate::diag::{
    Applicability, Code, Diagnostic, Location, QueryPart, StatementPart, Suggestion,
};
use crate::passes::analyze_document;

/// Attaches repair suggestions to freshly produced diagnostics. Called by
/// [`analyze_document`] after span resolution; diagnostics without a
/// resolvable span (programmatic documents) get no suggestions.
pub(crate) fn attach_suggestions(diags: &mut [Diagnostic], doc: &Document, vocab: &Vocabulary) {
    for d in diags.iter_mut() {
        let Some(span) = d.span else { continue };
        match (d.code, d.location) {
            (
                Code::DuplicateStatement,
                Location::Statement {
                    part: StatementPart::Whole,
                    ..
                },
            ) => {
                d.suggestions.push(Suggestion {
                    message: "delete this duplicate statement".to_owned(),
                    span,
                    replacement: String::new(),
                    applicability: Applicability::MachineApplicable,
                });
            }
            (
                Code::SubsumedStatement,
                Location::Statement {
                    part: StatementPart::Whole,
                    ..
                },
            ) => {
                d.suggestions.push(Suggestion {
                    message: "delete this subsumed statement".to_owned(),
                    span,
                    replacement: String::new(),
                    applicability: Applicability::MachineApplicable,
                });
            }
            (
                Code::DeadStatement,
                Location::Statement {
                    part: StatementPart::Whole,
                    ..
                },
            ) => {
                d.suggestions.push(Suggestion {
                    message: "delete this dead statement".to_owned(),
                    span,
                    replacement: String::new(),
                    applicability: Applicability::MachineApplicable,
                });
            }
            (
                Code::UnusedStatement,
                Location::Statement {
                    part: StatementPart::Whole,
                    ..
                },
            ) => {
                d.suggestions.push(Suggestion {
                    message: "delete this unused statement".to_owned(),
                    span,
                    replacement: String::new(),
                    applicability: Applicability::MaybeIncorrect,
                });
            }
            (Code::DomainViolationFact, Location::Fact { .. }) => {
                d.suggestions.push(Suggestion {
                    message: "delete this constraint-violating fact".to_owned(),
                    span,
                    replacement: String::new(),
                    applicability: Applicability::MaybeIncorrect,
                });
            }
            (
                Code::UnsafeQuery,
                Location::Query {
                    index,
                    part: QueryPart::Head,
                },
            ) => {
                let Some(q) = doc.queries.get(index) else {
                    continue;
                };
                let body_vars = q.body_vars();
                let kept: Vec<String> = q
                    .head
                    .iter()
                    .filter(|t| match t {
                        Term::Var(v) => body_vars.contains(v),
                        Term::Cst(_) => true,
                    })
                    .map(|t| t.display(vocab).to_string())
                    .collect();
                d.suggestions.push(Suggestion {
                    message: "drop the unbound head variables".to_owned(),
                    span,
                    replacement: format!("{}({})", vocab.name(q.name), kept.join(", ")),
                    applicability: Applicability::MachineApplicable,
                });
            }
            _ => {}
        }
    }
}

/// One `--fix` run: the resulting text plus what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixReport {
    /// The fixed source (equal to the input when nothing was applied).
    pub text: String,
    /// Committed fix rounds (each round re-parses and re-analyzes).
    pub rounds: usize,
    /// Total edits applied across committed rounds.
    pub applied: usize,
    /// Diagnostic count of the input text.
    pub diags_before: usize,
    /// Diagnostic count of the output text.
    pub diags_after: usize,
}

fn analyze_text(src: &str) -> Result<(Document, Vec<Diagnostic>), ParseError> {
    let mut vocab = Vocabulary::new();
    let doc = parse_document(src, &mut vocab)?;
    let diags = analyze_document(&doc, &mut vocab);
    Ok((doc, diags))
}

/// The `(errors, warnings, infos)` profile the progress guard compares.
pub fn severity_profile(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let count = |s: crate::diag::Severity| diags.iter().filter(|d| d.severity == s).count();
    (
        count(crate::diag::Severity::Error),
        count(crate::diag::Severity::Warning),
        count(crate::diag::Severity::Info),
    )
}

/// Applies the given edits to `src`: sorts longest-span-first (ties by
/// start position, then replacement text), drops edits overlapping an
/// already-selected one, and splices the survivors. Whole-line deletions
/// also consume the line's trailing newline so no blank line is left
/// behind. Returns the new text and the number of edits applied.
pub fn apply_edits(src: &str, edits: &[Suggestion]) -> (String, usize) {
    let mut ordered: Vec<&Suggestion> = edits.iter().collect();
    ordered.sort_by(|a, b| {
        b.span
            .len()
            .cmp(&a.span.len())
            .then_with(|| a.span.start.cmp(&b.span.start))
            .then_with(|| a.replacement.cmp(&b.replacement))
    });
    let mut selected: Vec<&Suggestion> = Vec::new();
    for e in ordered {
        if e.span.end > src.len() || e.span.start > e.span.end {
            continue;
        }
        let overlaps = selected
            .iter()
            .any(|s| e.span.start < s.span.end && s.span.start < e.span.end);
        if !overlaps {
            selected.push(e);
        }
    }
    let applied = selected.len();
    // Splice back-to-front so earlier offsets stay valid.
    selected.sort_by_key(|s| std::cmp::Reverse(s.span.start));
    let bytes = src.as_bytes();
    let mut text = src.to_owned();
    for e in selected {
        let (mut start, mut end) = (e.span.start, e.span.end);
        if e.replacement.is_empty() {
            // Deleting a whole line? Consume its indentation and newline.
            let mut ls = start;
            while ls > 0 && (bytes[ls - 1] == b' ' || bytes[ls - 1] == b'\t') {
                ls -= 1;
            }
            let mut le = end;
            while le < bytes.len() && (bytes[le] == b' ' || bytes[le] == b'\t') {
                le += 1;
            }
            if (ls == 0 || bytes[ls - 1] == b'\n') && (le == bytes.len() || bytes[le] == b'\n') {
                start = ls;
                end = if le < bytes.len() { le + 1 } else { le };
            }
        }
        text.replace_range(start..end, &e.replacement);
    }
    (text, applied)
}

/// Runs the fix driver to its fixpoint. Errors only when the *input*
/// does not parse; committed intermediate states always parse.
pub fn fix_source(src: &str) -> Result<FixReport, ParseError> {
    let (_, diags) = analyze_text(src)?;
    let diags_before = diags.len();
    let mut cur = src.to_owned();
    let mut count = diags_before;
    let mut profile = severity_profile(&diags);
    let mut rounds = 0;
    let mut applied_total = 0;
    loop {
        let (_, diags) = analyze_text(&cur).expect("committed text parses");
        let edits: Vec<Suggestion> = diags
            .iter()
            .flat_map(|d| d.suggestions.iter())
            .filter(|s| s.applicability == Applicability::MachineApplicable)
            .cloned()
            .collect();
        if edits.is_empty() {
            break;
        }
        let (next, applied) = apply_edits(&cur, &edits);
        if applied == 0 || next == cur {
            break;
        }
        // Progress guard: revert the round unless the result parses and
        // strictly shrinks the severity profile.
        let Ok((_, next_diags)) = analyze_text(&next) else {
            break;
        };
        let next_profile = severity_profile(&next_diags);
        if next_profile >= profile {
            break;
        }
        profile = next_profile;
        count = next_diags.len();
        cur = next;
        rounds += 1;
        applied_total += applied;
    }
    Ok(FixReport {
        text: cur,
        rounds,
        applied: applied_total,
        diags_before,
        diags_after: count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_parser::Span;

    #[test]
    fn duplicate_statement_is_deleted_and_fix_is_idempotent() {
        let src = "compl p(X) ; true.\ncompl p(Y) ; true.\nquery q(X) :- p(X).\n";
        let report = fix_source(src).unwrap();
        assert_eq!(report.text, "compl p(X) ; true.\nquery q(X) :- p(X).\n");
        assert!(report.applied >= 1);
        assert!(report.diags_after < report.diags_before);
        let again = fix_source(&report.text).unwrap();
        assert_eq!(again.text, report.text);
        assert_eq!(again.applied, 0);
    }

    #[test]
    fn unsafe_query_head_is_qualified() {
        let src = "compl p(X) ; true.\nquery q(X, Y) :- p(X).\n";
        let report = fix_source(src).unwrap();
        assert!(
            report.text.contains("query q(X) :- p(X)."),
            "{}",
            report.text
        );
        let (_, diags) = analyze_text(&report.text).unwrap();
        assert!(diags.iter().all(|d| d.code != Code::UnsafeQuery));
    }

    #[test]
    fn overlapping_edits_pick_the_longest_deterministically() {
        let src = "abcdef";
        let edits = vec![
            Suggestion {
                message: "short".into(),
                span: Span::new(1, 3),
                replacement: "X".into(),
                applicability: Applicability::MachineApplicable,
            },
            Suggestion {
                message: "long".into(),
                span: Span::new(0, 4),
                replacement: "Y".into(),
                applicability: Applicability::MachineApplicable,
            },
        ];
        let (text, applied) = apply_edits(src, &edits);
        assert_eq!(applied, 1);
        assert_eq!(text, "Yef");
    }

    #[test]
    fn disjoint_edits_all_apply() {
        let src = "abcdef";
        let edits = vec![
            Suggestion {
                message: "a".into(),
                span: Span::new(0, 1),
                replacement: "X".into(),
                applicability: Applicability::MachineApplicable,
            },
            Suggestion {
                message: "b".into(),
                span: Span::new(5, 6),
                replacement: "Z".into(),
                applicability: Applicability::MachineApplicable,
            },
        ];
        let (text, applied) = apply_edits(src, &edits);
        assert_eq!(applied, 2);
        assert_eq!(text, "XbcdeZ");
    }

    #[test]
    fn clean_input_is_untouched() {
        let src = "compl p(X) ; true.\nquery q(X) :- p(X).\n";
        let report = fix_source(src).unwrap();
        assert_eq!(report.text, src);
        assert_eq!(report.rounds, 0);
    }
}
