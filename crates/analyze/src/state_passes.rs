//! State-aware analysis: diagnostics M018–M025 over a *live* session
//! (statement set + stored instance + constraints + vocabulary) rather
//! than a standalone document.
//!
//! The document passes judge a spec in isolation; a running server knows
//! more — which relations actually hold facts, which statements the
//! session has accumulated, what the interned vocabulary looks like.
//! These passes surface the mismatches only that view can see: redundant
//! or dead statements in the accumulated set (M018/M019), relations that
//! store facts nobody guarantees (M020, the completeness blind spot),
//! guarantees that match nothing currently stored (M021), checks doomed
//! to come back incomplete on every instance (M022, reusing the
//! [`guaranteeable_relations`] greatest fixpoint of `coverage.rs`), a
//! fact-holding session with no statements at all (M023), same-name
//! relations interned at different arities (M024 — unreachable in a
//! single parse, but incremental sessions can get there), and incomplete
//! checks with an attached minimal repair (M025).
//!
//! All diagnostics are span-free ([`Location`]s only): live state has no
//! source text. The server caches the result per
//! `(tcs_epoch, data_epoch)` — see `magik-server`'s `AnalysisCache`.

use std::collections::{BTreeMap, BTreeSet};

use magik_completeness::keys::ChaseOutcome;
use magik_completeness::lint::Lint;
use magik_completeness::{chase_query, lint, ConstraintSet, TcSet};
use magik_relalg::{DisplayWith, Fact, Pred, Query, Term, Vocabulary};

use crate::coverage::guaranteeable_relations;
use crate::diag::{Code, Diagnostic, Location, QueryPart, StatementPart};

/// Analyzes a live session: statements M018/M019/M021, data M020/M023,
/// vocabulary M024. Deterministic: diagnostics come back ordered by
/// location, then code.
pub fn analyze_state(
    tcs: &TcSet,
    constraints: &ConstraintSet,
    facts: &[Fact],
    vocab: &Vocabulary,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let statements = tcs.statements();

    // M018: redundancy within the live set — duplicates and subsumed
    // statements, via the same lint the document pass M001/M002 uses.
    for l in lint(tcs) {
        match l {
            Lint::Duplicate { first, second } => out.push(
                Diagnostic::new(
                    Code::RedundantLiveStatement,
                    Location::Statement {
                        index: second,
                        part: StatementPart::Whole,
                    },
                    format!(
                        "live statement duplicates statement [{first}] `{}` up to renaming",
                        statements[first].display(vocab)
                    ),
                )
                .with_note("retracting it would not change any verdict"),
            ),
            Lint::Subsumed { subsumed, by } => out.push(
                Diagnostic::new(
                    Code::RedundantLiveStatement,
                    Location::Statement {
                        index: subsumed,
                        part: StatementPart::Whole,
                    },
                    format!(
                        "live statement is subsumed by the more general statement [{by}] `{}`",
                        statements[by].display(vocab)
                    ),
                )
                .with_note("retracting it would not change any verdict"),
            ),
            Lint::SelfConditioned { .. } | Lint::UnguaranteeableCondition { .. } => {}
        }
    }

    // M019: statements that can never fire under the session ICs.
    for (i, c) in statements.iter().enumerate() {
        let aq = c.associated_query();
        let dead = constraints.variable_domains(&aq).is_err()
            || matches!(
                chase_query(&aq, constraints.keys()),
                ChaseOutcome::Unsatisfiable
            );
        if dead {
            out.push(
                Diagnostic::new(
                    Code::UnsatisfiableLiveStatement,
                    Location::Statement {
                        index: i,
                        part: StatementPart::Whole,
                    },
                    format!(
                        "live statement `{}` can never fire under the session's integrity \
                         constraints",
                        c.display(vocab)
                    ),
                )
                .with_note("its guarantee is vacuous on every valid instance"),
            );
        }
    }

    let stored: BTreeSet<Pred> = facts.iter().map(|f| f.pred).collect();
    let headed: BTreeSet<Pred> = statements.iter().map(|c| c.head.pred).collect();

    // M023: facts but no statements at all — one document-level notice
    // instead of one M020 per relation (which would restate it noisily).
    if !facts.is_empty() && tcs.is_empty() {
        out.push(
            Diagnostic::new(
                Code::EmptyStatementSet,
                Location::Document,
                format!(
                    "the session stores {} fact{} but holds no completeness statements",
                    facts.len(),
                    if facts.len() == 1 { "" } else { "s" }
                ),
            )
            .with_note(
                "every completeness check returns `incomplete` until a statement is asserted",
            ),
        );
    } else {
        // M020: asserted facts with no covering statement.
        for &p in &stored {
            if !headed.contains(&p) {
                let n = facts.iter().filter(|f| f.pred == p).count();
                out.push(
                    Diagnostic::new(
                        Code::CompletenessBlindSpot,
                        Location::Document,
                        format!(
                            "relation `{}/{}` has {n} asserted fact{} but no statement guarantees \
                             any part of it",
                            vocab.pred_name(p),
                            vocab.arity(p),
                            if n == 1 { "" } else { "s" }
                        ),
                    )
                    .with_note(
                        "queries over it can never be proved complete — a completeness blind spot",
                    ),
                );
            }
        }
    }

    // M021: statements whose head pattern matches zero stored facts.
    // Only meaningful once the session stores data at all.
    if !facts.is_empty() {
        for (i, c) in statements.iter().enumerate() {
            let matches_something = facts
                .iter()
                .filter(|f| f.pred == c.head.pred)
                .any(|f| pattern_matches(&c.head.args, &f.args, vocab));
            if !matches_something {
                out.push(
                    Diagnostic::new(
                        Code::VacuousStatement,
                        Location::Statement {
                            index: i,
                            part: StatementPart::Head,
                        },
                        format!(
                            "live statement `{}` matches no stored fact",
                            c.display(vocab)
                        ),
                    )
                    .with_note("the guarantee is currently vacuous over the stored instance"),
                );
            }
        }
    }

    // M024: one name interned at several arities across statements,
    // facts, and constraints.
    let mut used: BTreeSet<Pred> = tcs.signature();
    used.extend(stored.iter().copied());
    used.extend(constraints.domains().iter().map(|d| d.pred));
    used.extend(constraints.keys().iter().map(|k| k.pred));
    let mut by_name: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for &p in &used {
        by_name
            .entry(vocab.pred_name(p))
            .or_default()
            .insert(vocab.arity(p));
    }
    for (name, arities) in by_name {
        if arities.len() > 1 {
            let list = arities
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(" and ");
            out.push(
                Diagnostic::new(
                    Code::LiveArityConflict,
                    Location::Document,
                    format!("relation name `{name}` is interned at arities {list} in this session"),
                )
                .with_note(
                    "same-name relations of different arity are unrelated; this usually means a \
                     mistyped assert or compl request",
                ),
            );
        }
    }

    out.sort_by(|a, b| {
        a.location
            .cmp(&b.location)
            .then_with(|| a.code.cmp(&b.code))
    });
    out
}

/// M022/M025 for one query. M022: the check verdict is `incomplete` on
/// *every* instance when a body atom's relation lies outside the
/// greatest fixpoint of guaranteeable relations — no complete
/// specialization exists, so the T_C-based test can never succeed.
/// M025: the query is incomplete under the current statement set, and a
/// minimal set of additional statements that would repair it (computed
/// by [`magik_completeness::repair_suggestions`], 1-minimal: removing
/// any one leaves the query incomplete) is attached as the suggestion.
/// `index` is only used for the diagnostic locations.
pub fn analyze_check(index: usize, q: &Query, tcs: &TcSet, vocab: &Vocabulary) -> Vec<Diagnostic> {
    if q.body.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let alive = guaranteeable_relations(tcs);
    let dead: Vec<String> = q
        .body
        .iter()
        .filter(|a| !alive.contains(&a.pred))
        .map(|a| format!("`{}`", a.display(vocab)))
        .collect();
    if !dead.is_empty() {
        out.push(
            Diagnostic::new(
                Code::TriviallyIncompleteCheck,
                Location::Query {
                    index,
                    part: QueryPart::Whole,
                },
                format!(
                    "checking `{}` is trivially incomplete for every instance: atom{} {} over \
                     transitively unguaranteeable relation{}",
                    vocab.name(q.name),
                    if dead.len() == 1 { "" } else { "s" },
                    dead.join(", "),
                    if dead.len() == 1 { "" } else { "s" },
                ),
            )
            .with_note(
                "the greatest-fixpoint coverage analysis proves no complete specialization \
                 exists; asserting a statement for the dead relation is the only repair",
            ),
        );
    }
    if !magik_completeness::is_complete(q, tcs) {
        let repair: Vec<String> = magik_completeness::repair_suggestions(q, tcs)
            .iter()
            .map(|s| format!("`{}`", s.display(vocab)))
            .collect();
        out.push(
            Diagnostic::new(
                Code::IncompleteWithRepair,
                Location::Query {
                    index,
                    part: QueryPart::Whole,
                },
                format!(
                    "checking `{}` comes back incomplete under the current statement set",
                    vocab.name(q.name)
                ),
            )
            .with_note(format!(
                "minimal repair: assert {}; the set is 1-minimal — removing any one of \
                 these statements leaves the query incomplete",
                repair.join(", ")
            )),
        );
    }
    out
}

/// Does a statement-head pattern match a stored tuple? Constants must
/// coincide; named variables bind rigidly (repeated occurrences must
/// agree); `_` is a wildcard.
fn pattern_matches(pattern: &[Term], tuple: &[magik_relalg::Cst], vocab: &Vocabulary) -> bool {
    if pattern.len() != tuple.len() {
        return false;
    }
    let mut bound: BTreeMap<magik_relalg::Var, magik_relalg::Cst> = BTreeMap::new();
    for (t, &c) in pattern.iter().zip(tuple.iter()) {
        match *t {
            Term::Cst(k) => {
                if k != c {
                    return false;
                }
            }
            Term::Var(v) => {
                if vocab.var_name(v) == "_" {
                    continue;
                }
                if *bound.entry(v).or_insert(c) != c {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_parser::{parse_document, parse_query};
    use magik_relalg::Vocabulary;

    fn live(src: &str) -> (Vec<Diagnostic>, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let doc = parse_document(src, &mut vocab).unwrap();
        let facts: Vec<Fact> = doc.facts.iter_facts().collect();
        let diags = analyze_state(&doc.tcs, &doc.constraints, &facts, &vocab);
        (diags, vocab)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn redundant_live_statement_is_m018() {
        let (diags, _) = live(
            "compl p(X) ; true.
             compl p(Y) ; true.
             fact p(a).",
        );
        let m018: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::RedundantLiveStatement)
            .collect();
        assert_eq!(m018.len(), 1, "{diags:?}");
        assert_eq!(
            m018[0].location,
            Location::Statement {
                index: 1,
                part: StatementPart::Whole
            }
        );
    }

    #[test]
    fn dead_live_statement_is_m019() {
        let (diags, _) = live(
            "domain shift(_, T) in {day, night}.
             compl worker(W) ; shift(W, evening).
             fact worker(ann).",
        );
        assert!(
            codes(&diags).contains(&Code::UnsatisfiableLiveStatement),
            "{diags:?}"
        );
    }

    #[test]
    fn blind_spot_is_m020() {
        let (diags, _) = live(
            "compl school(S, T, D) ; true.
             fact school(goethe, primary, merano).
             fact pupil(john, c1, goethe).",
        );
        let m020: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::CompletenessBlindSpot)
            .collect();
        assert_eq!(m020.len(), 1, "{diags:?}");
        assert!(m020[0].message.contains("pupil"), "{m020:?}");
    }

    #[test]
    fn vacuous_statement_is_m021() {
        let (diags, _) = live(
            "compl school(S, primary, D) ; true.
             fact school(goethe, middle, merano).",
        );
        let m021: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::VacuousStatement)
            .collect();
        assert_eq!(m021.len(), 1, "{diags:?}");
        // A matching fact clears it.
        let (diags, _) = live(
            "compl school(S, primary, D) ; true.
             fact school(goethe, primary, merano).",
        );
        assert!(
            !codes(&diags).contains(&Code::VacuousStatement),
            "{diags:?}"
        );
    }

    #[test]
    fn empty_statement_set_is_m023_and_mutes_m020() {
        let (diags, _) = live("fact p(a).\nfact q(b).");
        let cs = codes(&diags);
        assert!(cs.contains(&Code::EmptyStatementSet), "{diags:?}");
        assert!(!cs.contains(&Code::CompletenessBlindSpot), "{diags:?}");
    }

    #[test]
    fn live_arity_conflict_is_m024() {
        // A single parse forbids mixed arities, so build the state
        // programmatically the way an incremental session would.
        let mut v = Vocabulary::new();
        let p1 = v.pred("p", 1);
        let p2 = v.pred("p", 2);
        let a = v.cst("a");
        let facts = vec![Fact::new(p1, vec![a]), Fact::new(p2, vec![a, a])];
        let diags = analyze_state(&TcSet::default(), &ConstraintSet::default(), &facts, &v);
        assert!(
            codes(&diags).contains(&Code::LiveArityConflict),
            "{diags:?}"
        );
    }

    #[test]
    fn trivially_incomplete_check_is_m022() {
        let mut v = Vocabulary::new();
        let doc = parse_document("compl pupil(N, C, S) ; class(C, S, L, T).", &mut v).unwrap();
        let q = parse_query("q(N) :- pupil(N, C, S)", &mut v).unwrap();
        let diags = analyze_check(0, &q, &doc.tcs, &v);
        // The doomed check is also plainly incomplete, so the repair
        // diagnostic rides along.
        assert_eq!(
            codes(&diags),
            vec![Code::TriviallyIncompleteCheck, Code::IncompleteWithRepair]
        );
        assert!(diags[0].message.contains("pupil"), "{diags:?}");
        // A covered query is clean.
        let doc2 = parse_document("compl pupil(N, C, S) ; true.", &mut v).unwrap();
        assert!(analyze_check(0, &q, &doc2.tcs, &v).is_empty());
    }

    #[test]
    fn incomplete_check_with_repair_is_m025() {
        let mut v = Vocabulary::new();
        let doc = parse_document(
            "compl school(S, primary, D) ; true.
             compl pupil(N, C, S) ; school(S, T, merano).",
            &mut v,
        )
        .unwrap();
        let q = parse_query(
            "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L)",
            &mut v,
        )
        .unwrap();
        let diags = analyze_check(0, &q, &doc.tcs, &v);
        // `learns` is unguaranteeable, so M022 fires too; M025 carries
        // the concrete repair.
        assert!(
            codes(&diags).contains(&Code::IncompleteWithRepair),
            "{diags:?}"
        );
        let m025 = diags
            .iter()
            .find(|d| d.code == Code::IncompleteWithRepair)
            .unwrap();
        assert_eq!(m025.severity, crate::Severity::Info);
        let note = m025.notes.join(" ");
        assert!(note.contains("compl learns(N, L) ; true"), "{note}");
        assert!(note.contains("1-minimal"), "{note}");
        // The complete sibling query stays clean.
        let q2 = parse_query("q(N) :- pupil(N, C, S), school(S, primary, merano)", &mut v).unwrap();
        assert!(analyze_check(0, &q2, &doc.tcs, &v).is_empty());
    }

    #[test]
    fn clean_live_state_reports_nothing() {
        let (diags, _) = live(
            "compl school(S, T, D) ; true.
             compl pupil(N, C, S) ; school(S, T, merano).
             fact school(goethe, primary, merano).
             fact pupil(john, c1, goethe).",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
