//! `--explain M0xx`: the diagnostic catalogue, embedded at build time.
//!
//! `ANALYSES.md` at the repository root is the human-authored catalogue
//! of every stable code (trigger conditions, examples, rationale). It is
//! compiled into the binary with `include_str!` so `magik analyze
//! --explain M004` works offline at the terminal, and the hygiene CI
//! check asserts every registered [`Code`] actually has an entry.

use crate::diag::Code;

/// The embedded catalogue text.
pub const CATALOGUE: &str = include_str!("../../../ANALYSES.md");

/// The catalogue entry for `code`: its `### M0xx — …` section, from the
/// heading up to (excluding) the next heading. `None` when the
/// catalogue has no entry — the caller can fall back to [`Code::title`].
pub fn explain_code(code: Code) -> Option<String> {
    let needle = format!("### {} ", code.as_str());
    let start = CATALOGUE.find(&needle)?;
    let body = &CATALOGUE[start..];
    let end = body[4..]
        .find("\n### ")
        .or_else(|| body[4..].find("\n## "))
        .map_or(body.len(), |i| i + 4);
    Some(body[..end].trim_end().to_owned() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_document_code_has_a_catalogue_entry() {
        for c in Code::ALL {
            let entry = explain_code(c)
                .unwrap_or_else(|| panic!("no ANALYSES.md entry for {}", c.as_str()));
            assert!(entry.starts_with(&format!("### {}", c.as_str())), "{entry}");
            // Sections are self-contained: no other heading bleeds in.
            assert!(!entry[4..].contains("\n### "), "{entry}");
        }
    }

    #[test]
    fn explain_is_none_only_for_missing_sections() {
        let entry = explain_code(Code::UnguaranteeableCondition).unwrap();
        assert!(entry.contains("M004"), "{entry}");
        assert!(entry.to_lowercase().contains("guarantee"), "{entry}");
    }
}
