//! Suppression: inline `% magik: allow(M001)` directives and baseline
//! files.
//!
//! A directive comment suppresses matching diagnostics on **its own line
//! and the line directly below it**, so both placements work:
//!
//! ```text
//! % magik: allow(M001)
//! compl p(X) ; true.            % suppressed by the line above
//! compl p(Y) ; true.  % magik: allow(M001)   — same-line form
//! ```
//!
//! Several codes may be listed (`allow(M001, M004)`), and `allow(all)`
//! suppresses every code. Directives ride the comment trivia the lexer
//! now records in [`magik_parser::DocumentSpans::comments`]; diagnostics
//! without a source span (programmatic documents) are never suppressed.
//!
//! Baselines record *accepted* pre-existing findings so new lints can be
//! denied by default without breaking existing specs: `--write-baseline`
//! stores a fingerprint (code, logical location, message) per diagnostic,
//! and `--baseline` filters any diagnostic whose fingerprint is already
//! recorded. The file is plain JSON, written and parsed here without any
//! external dependency.

use std::collections::{BTreeSet, HashMap};

use magik_parser::{Comment, LineIndex};

use crate::diag::{Code, Diagnostic};

/// One parsed `% magik: allow(...)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive is written on.
    pub line: usize,
    /// The codes listed; `None` means `allow(all)`.
    pub codes: Option<Vec<Code>>,
}

/// Extracts the allow directives from comment trivia. Malformed
/// directives (unknown codes, missing parentheses) are ignored rather
/// than failing the run — a comment is never a hard error.
pub fn allow_directives(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches('%').trim();
        let Some(rest) = body.strip_prefix("magik:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            continue;
        };
        let args = args.trim();
        if args.eq_ignore_ascii_case("all") {
            out.push(AllowDirective {
                line: c.line,
                codes: None,
            });
            continue;
        }
        let codes: Option<Vec<Code>> = args.split(',').map(|s| Code::parse(s.trim())).collect();
        if let Some(codes) = codes {
            if !codes.is_empty() {
                out.push(AllowDirective {
                    line: c.line,
                    codes: Some(codes),
                });
            }
        }
    }
    out
}

/// Splits diagnostics into (kept, suppressed) under the given directives.
/// A diagnostic is suppressed when its span starts on a directive's line
/// or on the line directly below it and its code is listed (or the
/// directive is `allow(all)`).
pub fn filter_suppressed(
    diags: Vec<Diagnostic>,
    directives: &[AllowDirective],
    index: &LineIndex,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    if directives.is_empty() {
        return (diags, Vec::new());
    }
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for d in diags {
        let matched = d.span.is_some_and(|span| {
            let (line, _) = index.line_col(span.start);
            directives.iter().any(|dir| {
                (dir.line == line || dir.line + 1 == line)
                    && dir.codes.as_ref().is_none_or(|cs| cs.contains(&d.code))
            })
        });
        if matched {
            suppressed.push(d);
        } else {
            kept.push(d);
        }
    }
    (kept, suppressed)
}

/// The identity of a diagnostic for baseline purposes: stable across
/// runs and across unrelated edits elsewhere in the file set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fingerprint {
    /// Source file name the diagnostic was reported in.
    pub file: String,
    /// The stable code string (`"M004"`).
    pub code: String,
    /// The logical location display (`"statement [1]"`).
    pub location: String,
    /// The primary message.
    pub message: String,
}

impl Fingerprint {
    /// Fingerprint of a diagnostic reported in `file`.
    pub fn of(file: &str, d: &Diagnostic) -> Fingerprint {
        Fingerprint {
            file: file.to_owned(),
            code: d.code.as_str().to_owned(),
            location: d.location.to_string(),
            message: d.message.clone(),
        }
    }
}

/// A set of accepted findings, read from / written to a JSON file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeSet<Fingerprint>,
}

impl Baseline {
    /// An empty baseline.
    pub fn new() -> Baseline {
        Baseline::default()
    }

    /// Number of recorded findings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline records nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records every diagnostic of a file.
    pub fn record(&mut self, file: &str, diags: &[Diagnostic]) {
        for d in diags {
            self.entries.insert(Fingerprint::of(file, d));
        }
    }

    /// Splits diagnostics of `file` into (new, baselined).
    pub fn filter(&self, file: &str, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let mut kept = Vec::new();
        let mut known = Vec::new();
        for d in diags {
            if self.entries.contains(&Fingerprint::of(file, &d)) {
                known.push(d);
            } else {
                kept.push(d);
            }
        }
        (kept, known)
    }

    /// Serializes the baseline as JSON.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self
            .entries
            .iter()
            .map(|f| {
                format!(
                    r#"{{"file":"{}","code":"{}","location":"{}","message":"{}"}}"#,
                    escape(&f.file),
                    escape(&f.code),
                    escape(&f.location),
                    escape(&f.message)
                )
            })
            .collect();
        format!(
            "{{\"version\":1,\"baseline\":[\n{}\n]}}\n",
            items.join(",\n")
        )
    }

    /// Parses a baseline file produced by [`Baseline::to_json`] (any
    /// JSON object array with string values under a `baseline` key).
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeSet::new();
        for obj in parse_object_array(text, "baseline")? {
            entries.insert(Fingerprint {
                file: obj.get("file").cloned().unwrap_or_default(),
                code: obj.get("code").cloned().unwrap_or_default(),
                location: obj.get("location").cloned().unwrap_or_default(),
                message: obj.get("message").cloned().unwrap_or_default(),
            });
        }
        Ok(Baseline { entries })
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON reader for the exact shape baselines use: a top-level
/// object with `key` mapping to an array of flat objects whose values
/// are strings. Anything else is a parse error.
fn parse_object_array(text: &str, key: &str) -> Result<Vec<HashMap<String, String>>, String> {
    let needle = format!("\"{key}\"");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("missing `{key}` key"))?;
    let rest = &text[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or("expected `:` after key")?
        .trim_start();
    let mut chars = rest.char_indices().peekable();
    match chars.next() {
        Some((_, '[')) => {}
        _ => return Err("expected `[`".to_owned()),
    }
    let mut out = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some(&(_, ']')) => break,
            Some(&(_, '{')) => {
                chars.next();
                let mut obj = HashMap::new();
                loop {
                    skip_ws(&mut chars);
                    match chars.peek() {
                        Some(&(_, '}')) => {
                            chars.next();
                            break;
                        }
                        Some(&(_, '"')) => {
                            let k = parse_string(&mut chars)?;
                            skip_ws(&mut chars);
                            match chars.next() {
                                Some((_, ':')) => {}
                                _ => return Err("expected `:`".to_owned()),
                            }
                            skip_ws(&mut chars);
                            let v = parse_string(&mut chars)?;
                            obj.insert(k, v);
                            skip_ws(&mut chars);
                            if let Some(&(_, ',')) = chars.peek() {
                                chars.next();
                            }
                        }
                        _ => return Err("expected `\"` or `}`".to_owned()),
                    }
                }
                out.push(obj);
                skip_ws(&mut chars);
                if let Some(&(_, ',')) = chars.peek() {
                    chars.next();
                }
            }
            _ => return Err("expected `{` or `]`".to_owned()),
        }
    }
    Ok(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
    while matches!(chars.peek(), Some(&(_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Result<String, String> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err("expected string".to_owned()),
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut v = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|(_, c)| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        v = v * 16 + d;
                    }
                    out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                }
                _ => return Err("bad escape".to_owned()),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::analyze_document;
    use magik_parser::parse_document;
    use magik_relalg::Vocabulary;

    fn run(src: &str) -> (Vec<Diagnostic>, Vec<AllowDirective>, LineIndex) {
        let mut vocab = Vocabulary::new();
        let doc = parse_document(src, &mut vocab).unwrap();
        let diags = analyze_document(&doc, &mut vocab);
        let dirs = allow_directives(&doc.spans.comments);
        (diags, dirs, LineIndex::new(src))
    }

    #[test]
    fn directive_above_suppresses_next_line() {
        let src = "compl p(X) ; true.\n% magik: allow(M001)\ncompl p(Y) ; true.\n";
        let (diags, dirs, index) = run(src);
        assert_eq!(dirs.len(), 1);
        assert!(diags.iter().any(|d| d.code == Code::DuplicateStatement));
        let (kept, suppressed) = filter_suppressed(diags, &dirs, &index);
        assert_eq!(suppressed.len(), 1);
        assert!(kept.iter().all(|d| d.code != Code::DuplicateStatement));
    }

    #[test]
    fn same_line_directive_suppresses() {
        let src = "compl p(X) ; true.\ncompl p(Y) ; true. % magik: allow(M001)\n";
        let (diags, dirs, index) = run(src);
        let (_, suppressed) = filter_suppressed(diags, &dirs, &index);
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn unlisted_codes_are_kept() {
        let src = "compl p(X) ; true.\n% magik: allow(M017)\ncompl p(Y) ; true.\n";
        let (diags, dirs, index) = run(src);
        let (kept, suppressed) = filter_suppressed(diags, &dirs, &index);
        assert!(suppressed.is_empty());
        assert!(kept.iter().any(|d| d.code == Code::DuplicateStatement));
    }

    #[test]
    fn allow_all_suppresses_everything_on_the_line() {
        let src = "compl p(X) ; q(X). % magik: allow(all)\nquery qq(X) :- p(X).\n";
        let (diags, dirs, index) = run(src);
        assert_eq!(dirs[0].codes, None);
        let (_, suppressed) = filter_suppressed(diags, &dirs, &index);
        // The statement-line M004 is suppressed; query diags are not.
        assert!(suppressed
            .iter()
            .any(|d| d.code == Code::UnguaranteeableCondition));
    }

    #[test]
    fn malformed_directives_are_ignored() {
        let comments = [
            Comment {
                text: "% magik: allow(M999)".into(),
                line: 1,
                span: magik_parser::Span::new(0, 1),
            },
            Comment {
                text: "% magik: deny(M001)".into(),
                line: 2,
                span: magik_parser::Span::new(0, 1),
            },
            Comment {
                text: "% just a comment".into(),
                line: 3,
                span: magik_parser::Span::new(0, 1),
            },
        ];
        assert!(allow_directives(&comments).is_empty());
    }

    #[test]
    fn baseline_roundtrips_and_filters() {
        let src = "compl p(X) ; true.\ncompl p(Y) ; true.\n";
        let (diags, _, _) = run(src);
        let mut b = Baseline::new();
        b.record("spec.magik", &diags);
        assert_eq!(b.len(), diags.len());
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        let (kept, known) = parsed.filter("spec.magik", diags.clone());
        assert!(kept.is_empty());
        assert_eq!(known.len(), diags.len());
        // A different file does not match.
        let (kept, _) = parsed.filter("other.magik", diags);
        assert!(!kept.is_empty());
    }

    #[test]
    fn baseline_with_quotes_and_newlines_roundtrips() {
        let mut b = Baseline::new();
        b.entries.insert(Fingerprint {
            file: "a \"b\".magik".into(),
            code: "M001".into(),
            location: "statement [0]".into(),
            message: "line1\nline2\ttab".into(),
        });
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn bad_baseline_is_an_error() {
        assert!(Baseline::from_json("{}").is_err());
        assert!(Baseline::from_json("{\"baseline\": 5}").is_err());
        assert!(Baseline::from_json("{\"baseline\": [{\"file\": }]}").is_err());
        assert!(Baseline::from_json("{\"baseline\": []}")
            .unwrap()
            .is_empty());
    }
}
