//! Coverage analysis: which relations can appear in a *complete* query?
//!
//! The Table 1 trap of the paper, generalized. A statement
//! `Compl(pupil(…); class(…))` with `class` heading no statement can
//! never discharge its condition during the specialization search — and
//! the trap propagates: if *every* statement guaranteeing `pupil` is
//! stuck this way, no complete query may mention `pupil` either.
//!
//! [`guaranteeable_relations`] computes the **greatest** set `A` of
//! relations such that every `R ∈ A` heads at least one statement whose
//! condition relations all lie in `A` (a greatest-fixpoint / coinductive
//! definition). Its complement — the *dead* relations — cannot occur in
//! any complete query:
//!
//! > **Claim.** If a query `Q` is complete wrt `C` and contains an atom
//! > over `R`, then `R ∈ A`.
//!
//! *Proof sketch* (induction on the round in which `R` is removed from
//! the working set). By Theorem 3, completeness of `Q` means the frozen
//! head is an answer of `Q` over `T_C(D_Q)`, so `T_C(D_Q)` contains an
//! `R`-fact for every relation `R` of `Q`'s body. Round 0: a headless `R`
//! never gains facts under `T_C` — contradiction. Round `k`: every
//! statement heading `R` has a condition relation `S` removed in an
//! earlier round; for the `R`-fact to be derived, some such statement
//! must fire over `D_Q`, which requires an `S`-atom *in `Q`'s body* (the
//! canonical database has no other facts) — and by induction no complete
//! query contains an `S`-atom. ∎
//!
//! The greatest fixpoint (rather than a least fixpoint seeded from
//! unconditional statements) is essential for soundness-of-the-complement:
//! cyclic statement sets can be self-supporting. In the Theorem 17 flight
//! example, `Compl(conn(…); conn(…))` keeps `conn` alive — complete
//! specializations over `conn` do exist — and a least fixpoint would
//! wrongly declare `conn` dead.
//!
//! Consequently: a query containing a dead-relation atom has **no**
//! complete specialization at all (specializing only adds atoms and
//! instantiates variables, never removes a relation symbol), so the
//! k-MCS set is empty for every `k` — detected *before* running the
//! exponential Algorithm 3 search.

use std::collections::BTreeSet;

use magik_completeness::TcSet;
use magik_relalg::Pred;

/// The greatest set of relations `A` such that each member heads a
/// statement whose condition relations all lie in `A`. See the module
/// docs: relations *outside* this set can appear in no complete query.
pub fn guaranteeable_relations(tcs: &TcSet) -> BTreeSet<Pred> {
    let mut alive: BTreeSet<Pred> = tcs.statements().iter().map(|c| c.head.pred).collect();
    loop {
        let supported: BTreeSet<Pred> = alive
            .iter()
            .copied()
            .filter(|&p| {
                tcs.for_pred(p)
                    .any(|c| c.condition.iter().all(|g| alive.contains(&g.pred)))
            })
            .collect();
        if supported.len() == alive.len() {
            return alive;
        }
        alive = supported;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_completeness::TcStatement;
    use magik_relalg::{Atom, Term, Vocabulary};

    fn stmt(v: &mut Vocabulary, head: (&str, usize), conds: &[(&str, usize)]) -> TcStatement {
        let mut mk = |name: &str, arity: usize| {
            let p = v.pred(name, arity);
            let args = (0..arity)
                .map(|i| Term::Var(v.var(&format!("X{i}"))))
                .collect();
            Atom::new(p, args)
        };
        let head = mk(head.0, head.1);
        let condition = conds.iter().map(|&(n, a)| mk(n, a)).collect();
        TcStatement::new(head, condition)
    }

    #[test]
    fn unconditional_statements_are_alive() {
        let mut v = Vocabulary::new();
        let tcs = TcSet::new(vec![stmt(&mut v, ("school", 3), &[])]);
        let alive = guaranteeable_relations(&tcs);
        assert!(alive.contains(&v.pred("school", 3)));
    }

    #[test]
    fn table1_trap_propagates_transitively() {
        // pupil is guaranteed only modulo class; class heads nothing.
        // Both are dead — and so is `learns`, guaranteed only modulo
        // pupil.
        let mut v = Vocabulary::new();
        let tcs = TcSet::new(vec![
            stmt(&mut v, ("pupil", 3), &[("class", 4)]),
            stmt(&mut v, ("learns", 2), &[("pupil", 3)]),
        ]);
        let alive = guaranteeable_relations(&tcs);
        assert!(alive.is_empty());
    }

    #[test]
    fn one_good_statement_keeps_a_relation_alive() {
        // pupil has a stuck statement AND an unconditional one: alive.
        let mut v = Vocabulary::new();
        let tcs = TcSet::new(vec![
            stmt(&mut v, ("pupil", 3), &[("class", 4)]),
            stmt(&mut v, ("pupil", 3), &[]),
        ]);
        let alive = guaranteeable_relations(&tcs);
        assert!(alive.contains(&v.pred("pupil", 3)));
        assert!(!alive.contains(&v.pred("class", 4)));
    }

    #[test]
    fn self_supporting_cycle_stays_alive() {
        // The Theorem 17 shape: conn conditioned on conn. A least
        // fixpoint would kill it; the greatest fixpoint must not.
        let mut v = Vocabulary::new();
        let tcs = TcSet::new(vec![stmt(&mut v, ("conn", 2), &[("conn", 2)])]);
        let alive = guaranteeable_relations(&tcs);
        assert!(alive.contains(&v.pred("conn", 2)));
    }

    #[test]
    fn cycle_with_a_dead_entry_point_dies() {
        // mutual cycle p ↔ q is self-supporting, but r depends on a
        // headless s even though r also feeds the cycle.
        let mut v = Vocabulary::new();
        let tcs = TcSet::new(vec![
            stmt(&mut v, ("p", 1), &[("q", 1)]),
            stmt(&mut v, ("q", 1), &[("p", 1)]),
            stmt(&mut v, ("r", 1), &[("s", 1)]),
        ]);
        let alive = guaranteeable_relations(&tcs);
        assert!(alive.contains(&v.pred("p", 1)));
        assert!(alive.contains(&v.pred("q", 1)));
        assert!(!alive.contains(&v.pred("r", 1)));
        assert!(!alive.contains(&v.pred("s", 1)));
    }
}
