//! Readiness polling for non-blocking sockets — a `mio`-sized poller.
//!
//! [`Poller`] watches file descriptors for read/write readiness so one
//! thread can multiplex many non-blocking connections (the server's
//! event-loop front end). On Linux it wraps `epoll` through four
//! `extern "C"` declarations against the libc that `std` already links —
//! the only unsafe code in the workspace, confined to this module's
//! `linux` backend and enforced by `ci/check_hygiene.sh`. On every other
//! Unix a fully safe fallback reports all registered descriptors as
//! (possibly spuriously) ready on a short tick; since non-blocking I/O
//! answers a spurious wake with `WouldBlock`, callers cannot observe the
//! difference except as extra polling.
//!
//! The poller is **level-triggered**: a descriptor keeps reporting ready
//! until the condition is drained, so a handler that processes only part
//! of its input is re-notified on the next [`Poller::wait`]. A built-in
//! waker ([`Poller::wake`], a self-pipe) interrupts a blocked `wait`
//! from any thread — worker threads use it to hand results back to the
//! loop.

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Which readiness to watch a descriptor for.
///
/// Errors and hangups are always reported (as both readable and
/// writable, so whichever direction the handler tries next observes the
/// failure immediately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the descriptor becomes readable.
    pub read: bool,
    /// Report when the descriptor becomes writable.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Neither — only errors and hangups surface. Used to park a
    /// connection under backpressure without deregistering it.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: usize,
    /// A read will make progress (data, EOF, or a pending error).
    pub readable: bool,
    /// A write will make progress (buffer space or a pending error).
    pub writable: bool,
}

/// The token value reserved for the internal waker.
const WAKE_TOKEN: u64 = u64::MAX;

/// A level-triggered readiness poller over raw file descriptors.
///
/// All methods take `&self`; [`Poller::wake`] is safe to call from any
/// thread while another thread blocks in [`Poller::wait`].
#[derive(Debug)]
pub struct Poller {
    inner: imp::Poller,
}

impl Poller {
    /// Creates a poller (and its internal waker pipe).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Poller::new()?,
        })
    }

    /// Starts watching `fd` with the given `token` and `interest`.
    ///
    /// `token` is echoed back in every [`Event`] for this descriptor;
    /// `usize::MAX` is reserved for the internal waker.
    pub fn register(&self, fd: &impl AsRawFd, token: usize, interest: Interest) -> io::Result<()> {
        if token as u64 == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token usize::MAX is reserved",
            ));
        }
        self.inner.register(fd.as_raw_fd(), token, interest)
    }

    /// Changes the interest (and/or token) of an already registered `fd`.
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        if token as u64 == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token usize::MAX is reserved",
            ));
        }
        self.inner.reregister(fd.as_raw_fd(), token, interest)
    }

    /// Stops watching `fd`. Must be called before the descriptor is
    /// closed on the fallback backend (epoll forgets closed fds itself).
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.inner.deregister(fd.as_raw_fd())
    }

    /// Blocks until at least one descriptor is ready, the timeout lapses,
    /// or [`Poller::wake`] is called; clears and refills `events`.
    ///
    /// A return with empty `events` means timeout, wake-up, or a signal —
    /// callers should re-check their own state and loop.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.inner.wait(events, timeout)
    }

    /// Interrupts a concurrent [`Poller::wait`]. Coalesces: many wakes
    /// before the next `wait` cost one wake-up.
    pub fn wake(&self) -> io::Result<()> {
        self.inner.wake()
    }
}

/// Linux backend: `epoll`, via `extern "C"` declarations against the
/// libc `std` already links. This module is the workspace's only unsafe
/// code (`ci/check_hygiene.sh` keeps it that way).
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use super::{Event, Interest, WAKE_TOKEN};
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o200_0000;
    const MAX_EVENTS: usize = 1024;

    /// Kernel ABI: packed on x86-64, naturally aligned elsewhere
    /// (mirrors `EPOLL_PACKED` in the kernel uapi header).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        ep: OwnedFd,
        wake_r: UnixStream,
        wake_w: UnixStream,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 allocates a new descriptor we then
            // own; a negative return is an error, checked below.
            let raw = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if raw < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `raw` is a freshly created, valid epoll fd owned
            // by nobody else.
            let ep = unsafe { OwnedFd::from_raw_fd(raw) };
            let (wake_r, wake_w) = UnixStream::pair()?;
            wake_r.set_nonblocking(true)?;
            wake_w.set_nonblocking(true)?;
            let poller = Poller { ep, wake_r, wake_w };
            poller.ctl(
                EPOLL_CTL_ADD,
                poller.wake_r.as_raw_fd(),
                EPOLLIN,
                WAKE_TOKEN,
            )?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            // SAFETY: `ev` is a live, properly laid out epoll_event and
            // both descriptors are open for the duration of the call.
            let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        fn mask(interest: Interest) -> u32 {
            let mut bits = 0;
            if interest.read {
                bits |= EPOLLIN | EPOLLRDHUP;
            }
            if interest.write {
                bits |= EPOLLOUT;
            }
            bits
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::mask(interest), token as u64)
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::mask(interest), token as u64)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // A non-null event pointer keeps pre-2.6.9 kernels happy.
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms = timeout.map_or(-1i32, |d| {
                // Round sub-millisecond timeouts up so they still sleep.
                let ms = d.as_millis().max(u128::from(u32::from(!d.is_zero())));
                i32::try_from(ms).unwrap_or(i32::MAX)
            });
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            // SAFETY: `buf` provides MAX_EVENTS writable epoll_event
            // slots; the kernel writes at most `maxevents` of them.
            let n = unsafe {
                epoll_wait(
                    self.ep.as_raw_fd(),
                    buf.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for raw in buf.iter().take(n as usize) {
                // Copy fields out by value: the struct may be packed.
                let bits = raw.events;
                let data = raw.data;
                if data == WAKE_TOKEN {
                    self.drain_waker();
                    continue;
                }
                events.push(Event {
                    token: data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }

        fn drain_waker(&self) {
            let mut sink = [0u8; 256];
            while matches!((&self.wake_r).read(&mut sink), Ok(n) if n > 0) {}
        }

        pub(super) fn wake(&self) -> io::Result<()> {
            match (&self.wake_w).write(&[1]) {
                Ok(_) => Ok(()),
                // Pipe already full: a wake-up is pending, nothing to do.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
                Err(e) => Err(e),
            }
        }
    }
}

/// Portable fallback (non-Linux Unix, or anywhere `epoll` is absent):
/// keeps the registration table in a mutex and reports every registered
/// descriptor as ready on a short tick. Spurious readiness is resolved
/// by the caller's non-blocking I/O (`WouldBlock`), so behaviour is
/// identical, just with polling overhead. No unsafe code.
#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    /// How long `wait` sleeps before spuriously reporting readiness.
    const TICK: Duration = Duration::from_millis(2);

    #[derive(Debug)]
    struct State {
        fds: HashMap<RawFd, (usize, Interest)>,
        woken: bool,
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        state: Mutex<State>,
        cv: Condvar,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            Ok(Poller {
                state: Mutex::new(State {
                    fds: HashMap::new(),
                    woken: false,
                }),
                cv: Condvar::new(),
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, State> {
            self.state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.lock().fds.insert(fd, (token, interest));
            Ok(())
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.lock().fds.insert(fd, (token, interest));
            Ok(())
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.lock().fds.remove(&fd);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let sleep = timeout.map_or(TICK, |t| t.min(TICK));
            let mut guard = self.lock();
            if !guard.woken && !sleep.is_zero() {
                let (g, _) = self
                    .cv
                    .wait_timeout(guard, sleep)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard = g;
            }
            guard.woken = false;
            for &(token, interest) in guard.fds.values() {
                if interest.read || interest.write {
                    events.push(Event {
                        token,
                        readable: interest.read,
                        writable: interest.write,
                    });
                }
            }
            Ok(())
        }

        pub(super) fn wake(&self) -> io::Result<()> {
            self.lock().woken = true;
            self.cv.notify_all();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    /// Waits until `pred` matches an event batch or the deadline lapses.
    fn wait_for(
        poller: &Poller,
        pred: impl Fn(&[Event]) -> bool,
        deadline: Duration,
    ) -> Vec<Event> {
        let start = Instant::now();
        let mut events = Vec::new();
        while start.elapsed() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if pred(&events) {
                return events;
            }
        }
        panic!("no matching event within {deadline:?}: {events:?}");
    }

    #[test]
    fn data_arrival_is_reported_readable() {
        let poller = Poller::new().expect("poller");
        let (a, mut b) = pair();
        a.set_nonblocking(true).expect("nonblocking");
        poller.register(&a, 7, Interest::READ).expect("register");

        b.write_all(b"hi").expect("write");
        let events = wait_for(
            &poller,
            |evs| evs.iter().any(|e| e.token == 7 && e.readable),
            Duration::from_secs(5),
        );
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: still readable until drained.
        let again = wait_for(
            &poller,
            |evs| evs.iter().any(|e| e.token == 7 && e.readable),
            Duration::from_secs(5),
        );
        assert!(again.iter().any(|e| e.token == 7));
        let mut buf = [0u8; 8];
        let n = (&a).read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"hi");
        poller.deregister(&a).expect("deregister");
    }

    #[test]
    fn write_interest_is_reported_on_an_idle_socket() {
        let poller = Poller::new().expect("poller");
        let (a, _b) = pair();
        a.set_nonblocking(true).expect("nonblocking");
        poller.register(&a, 3, Interest::BOTH).expect("register");
        let events = wait_for(
            &poller,
            |evs| evs.iter().any(|e| e.token == 3 && e.writable),
            Duration::from_secs(5),
        );
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        poller.deregister(&a).expect("deregister");
    }

    #[test]
    fn wake_interrupts_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().expect("poller"));
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake().expect("wake");
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .expect("wait");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "wait did not return promptly after wake()"
        );
        handle.join().expect("join");
    }

    #[test]
    fn reserved_token_is_rejected() {
        let poller = Poller::new().expect("poller");
        let (a, _b) = pair();
        assert!(poller.register(&a, usize::MAX, Interest::READ).is_err());
    }
}
