//! The shared execution runtime: a std-only, work-stealing thread pool.
//!
//! This crate hosts the one pool every parallel layer of the workspace
//! runs on — the server's connection handling, the parallel semi-naive
//! Datalog rounds, and the k-MCS candidate fan-out (through `magik-exec`'s
//! `Executor`). Design points:
//!
//! * **Work stealing.** Each worker owns a deque; submission round-robins
//!   jobs across the deques, a worker pops from the *front* of its own
//!   deque and steals from the *back* of a sibling's when it runs dry.
//!   Steals are counted ([`PoolCounters::steals`]) so skew is observable
//!   through the server's `metrics` op.
//! * **Panic isolation.** A panicking job must not shrink the pool: each
//!   job runs under `catch_unwind`, the panic is swallowed into the
//!   [`PoolCounters::panics`] counter, and the worker keeps serving.
//!   Fork-join callers ([`ThreadPool::run_map`]) still observe the panic —
//!   task wrappers ship the unwind payload back and the *submitting*
//!   thread resumes it.
//! * **Caller assistance.** A thread blocked in [`ThreadPool::run_map`]
//!   drains pool queues itself while it waits, so nested fork-join from
//!   inside a pool job cannot deadlock a saturated pool.
//! * **Safe code only.** No scoped threads, no unsafe: jobs are `'static`
//!   boxed closures, and shared state travels in `Arc`s (the relalg
//!   `Snapshot` type makes that cheap).
//!
//! Dropping the pool is a barrier: the queues are drained, every worker
//! joins, and all submitted jobs have finished.
//!
//! The crate also hosts [`poller`], the std-only readiness poller the
//! server's event-loop front end multiplexes connections on. Its Linux
//! `epoll` backend is the one place in the workspace allowed to use
//! `unsafe` (four `extern "C"` declarations) — hence `deny(unsafe_code)`
//! here rather than `forbid`, with the exception scoped to that module
//! and policed by `ci/check_hygiene.sh`.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod poller;

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Aggregate counters of a [`ThreadPool`], surfaced through the server's
/// `metrics` op as `runtime.tasks` / `runtime.steals` / `pool.panics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Jobs submitted over the pool's lifetime.
    pub tasks: u64,
    /// Jobs a worker took from a sibling's deque (or a blocked fork-join
    /// caller took from any deque) instead of its own.
    pub steals: u64,
    /// Jobs that panicked. The workers survive; this counter is the only
    /// trace unless the submitter collects results ([`ThreadPool::run_map`]
    /// re-raises on the calling thread).
    pub panics: u64,
}

struct Shared {
    /// One deque per worker. A `Mutex<VecDeque>` per slot keeps the design
    /// std-only; contention is low because submission spreads round-robin
    /// and each worker drains its own slot first.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep coordination: workers re-check every queue under this lock
    /// before waiting, and submitters notify under it after pushing, so a
    /// push can never slip between check and wait.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    next: AtomicUsize,
    tasks: AtomicU64,
    steals: AtomicU64,
    panics: AtomicU64,
}

impl Shared {
    /// Pops a job: own queue front first, then siblings' backs. `home` is
    /// `None` for an assisting non-worker thread (every pop is a steal).
    fn pop(&self, home: Option<usize>) -> Option<Job> {
        if let Some(h) = home {
            if let Some(job) = self.queues[h].lock().expect("queue lock").pop_front() {
                return Some(job);
            }
        }
        let n = self.queues.len();
        let start = home.map_or(0, |h| h + 1);
        for off in 0..n {
            let i = (start + off) % n;
            if Some(i) == home {
                continue;
            }
            if let Some(job) = self.queues[i].lock().expect("queue lock").pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn run(&self, job: Job) {
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A fixed-size, work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .field("counters", &self.counters())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns `size` worker threads (`size >= 1`).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            queues: (0..size).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let workers = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("magik-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The pool's lifetime counters.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            panics: self.shared.panics.load(Ordering::Relaxed),
        }
    }

    /// Submits a fire-and-forget job.
    ///
    /// A panic inside `job` is caught: the worker survives and
    /// [`PoolCounters::panics`] is incremented.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.tasks.fetch_add(1, Ordering::Relaxed);
        let slot = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[slot]
            .lock()
            .expect("queue lock")
            .push_back(Box::new(job));
        // Notify under the sleep lock so a worker that just found every
        // queue empty cannot miss this push.
        let _guard = self.shared.sleep.lock().expect("sleep lock");
        self.shared.wake.notify_one();
    }

    /// Fork-join: applies `f` to every item on the pool and returns the
    /// results **in input order**.
    ///
    /// The calling thread assists — it drains pool queues while waiting —
    /// so `run_map` may be called from inside a pool job without
    /// deadlocking a saturated pool. If `f` panics for any item, the panic
    /// is resumed on the calling thread (after the counter is bumped).
    pub fn run_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let f = Arc::new(f);
        let (tx, rx) = channel::<(usize, std::thread::Result<R>)>();
        for (i, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.execute(move || {
                // Catch here (not just in the worker) so the submitter
                // learns about the panic and can re-raise it.
                let result = catch_unwind(AssertUnwindSafe(|| f(item)));
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut pending = n;
        let mut first_panic = None;
        while pending > 0 {
            match rx.recv_timeout(Duration::from_micros(50)) {
                Ok((i, Ok(value))) => {
                    slots[i] = Some(value);
                    pending -= 1;
                }
                Ok((_, Err(payload))) => {
                    self.shared.panics.fetch_add(1, Ordering::Relaxed);
                    first_panic.get_or_insert(payload);
                    pending -= 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Assist: run queued jobs (ours or anyone's) instead of
                    // blocking a thread the tasks might need.
                    while let Some(job) = self.shared.pop(None) {
                        self.shared.run(job);
                        if let Ok(msg) = rx.try_recv() {
                            match msg {
                                (i, Ok(value)) => {
                                    slots[i] = Some(value);
                                    pending -= 1;
                                }
                                (_, Err(payload)) => {
                                    self.shared.panics.fetch_add(1, Ordering::Relaxed);
                                    first_panic.get_or_insert(payload);
                                    pending -= 1;
                                }
                            }
                        }
                        if pending == 0 {
                            break;
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("every task sends exactly once before its sender drops")
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|s| s.expect("all results received"))
            .collect()
    }
}

fn worker_loop(shared: &Shared, home: usize) {
    loop {
        if let Some(job) = shared.pop(Some(home)) {
            shared.run(job);
            continue;
        }
        // Nothing found: re-check under the sleep lock, then wait. The
        // timeout is a safety net against any missed notification.
        let guard = shared.sleep.lock().expect("sleep lock");
        if shared.shutdown.load(Ordering::Acquire) {
            // Drain whatever remains before exiting (drop is a barrier).
            drop(guard);
            while let Some(job) = shared.pop(Some(home)) {
                shared.run(job);
            }
            return;
        }
        let queues_empty = shared
            .queues
            .iter()
            .all(|q| q.lock().expect("queue lock").is_empty());
        if queues_empty {
            let _ = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(10))
                .expect("sleep lock");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep.lock().expect("sleep lock");
            self.shared.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The machine's available parallelism, defaulting to 1 when unknown.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Splits `len` items into at most `parts` contiguous ranges of nearly
/// equal size (the first `len % parts` ranges get one extra item). Empty
/// ranges are omitted, so fewer than `parts` ranges come back when
/// `len < parts`.
pub fn partition(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::new();
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs_and_joins_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins, so every job has run afterwards.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = ThreadPool::new(2);
        let (tx1, rx1) = channel();
        let (tx2, rx2) = channel();
        // Two jobs that each wait for the other's signal: only possible
        // if they run on distinct workers.
        pool.execute(move || {
            tx1.send(()).unwrap();
            rx2.recv().unwrap();
        });
        pool.execute(move || {
            rx1.recv().unwrap();
            tx2.send(()).unwrap();
        });
        // Dropping joins; a deadlock here would hang the test.
    }

    #[test]
    fn panicking_job_keeps_workers_alive() {
        // Regression test: a panicking job used to kill its worker thread
        // silently, permanently shrinking the pool.
        let pool = ThreadPool::new(2);
        for _ in 0..8 {
            pool.execute(|| panic!("job panic"));
        }
        // Give the panicking jobs time to be picked up, then prove the
        // full pool still serves: 2 interlocked jobs need 2 live workers.
        let (tx, rx) = channel();
        let (tx1, rx1) = channel();
        let (tx2, rx2) = channel();
        let txa = tx.clone();
        pool.execute(move || {
            tx1.send(()).unwrap();
            rx2.recv().unwrap();
            txa.send(()).unwrap();
        });
        pool.execute(move || {
            rx1.recv().unwrap();
            tx2.send(()).unwrap();
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(pool.counters().panics, 8);
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn run_map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..200).collect();
        let out = pool.run_map(items, |x| x * 2);
        assert_eq!(out, (0..200).map(|x| x * 2).collect::<Vec<u64>>());
        assert!(pool.counters().tasks >= 200);
    }

    #[test]
    fn run_map_resumes_task_panics_on_caller() {
        let pool = ThreadPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_map(vec![1u32, 2, 3], |x| {
                assert!(x != 2, "boom");
                x
            })
        }));
        assert!(caught.is_err());
        assert!(pool.counters().panics >= 1);
        // The pool is still usable afterwards.
        assert_eq!(pool.run_map(vec![10u32], |x| x + 1), vec![11]);
    }

    #[test]
    fn nested_run_map_does_not_deadlock() {
        // Every worker blocks in an outer run_map whose inner tasks can
        // only proceed through caller assistance.
        let pool = Arc::new(ThreadPool::new(2));
        let outer = Arc::clone(&pool);
        let sums = pool.run_map(vec![0u64, 1, 2, 3], move |base| {
            outer
                .run_map((0..8u64).collect(), move |x| base * 100 + x)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(sums, vec![28, 828, 1628, 2428]);
    }

    #[test]
    fn stealing_happens_under_skewed_load() {
        let pool = ThreadPool::new(4);
        // Many more jobs than workers: round-robin spreads them, and the
        // fast workers steal from the slow one's deque.
        let slow = Arc::new(AtomicUsize::new(0));
        let slow2 = Arc::clone(&slow);
        let out = pool.run_map((0..64u64).collect(), move |x| {
            if x % 4 == 0 {
                // Slow lane.
                std::thread::sleep(Duration::from_millis(2));
                slow2.fetch_add(1, Ordering::SeqCst);
            }
            x
        });
        assert_eq!(out.len(), 64);
        // Steals are load-dependent; the counter is just observable.
        let _ = pool.counters().steals;
    }

    #[test]
    fn partition_covers_range_without_overlap() {
        for (len, parts) in [(0, 4), (3, 4), (4, 4), (10, 3), (100, 8), (7, 1)] {
            let ranges = partition(len, parts);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered);
                covered = r.end;
                assert!(!r.is_empty());
            }
            assert_eq!(covered, len);
            assert!(ranges.len() <= parts.max(1));
        }
    }
}
