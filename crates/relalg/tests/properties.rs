//! Property-based tests for the relational-algebra substrate.
//!
//! Random queries and instances are generated over a small fixed schema;
//! each property checks a law the rest of the system relies on.

use proptest::prelude::*;

use magik_relalg::{
    answers, are_equivalent, canonical_database, freeze_atom, has_answer, is_contained_in,
    is_minimal, minimize, unfreeze_fact, Atom, Fact, Instance, Query, Substitution, Term,
    Vocabulary,
};

/// Abstract term: materialized against a vocabulary later.
#[derive(Debug, Clone, Copy)]
enum ATerm {
    Var(u8),
    Cst(u8),
}

#[derive(Debug, Clone)]
struct AAtom {
    pred: u8,
    args: Vec<ATerm>,
}

#[derive(Debug, Clone)]
struct AQuery {
    head: Vec<ATerm>,
    body: Vec<AAtom>,
}

const NUM_PREDS: u8 = 3;
const NUM_VARS: u8 = 5;
const NUM_CSTS: u8 = 3;

fn pred_arity(p: u8) -> usize {
    [1, 2, 3][p as usize % 3]
}

fn aterm() -> impl Strategy<Value = ATerm> {
    prop_oneof![
        (0..NUM_VARS).prop_map(ATerm::Var),
        (0..NUM_CSTS).prop_map(ATerm::Cst),
    ]
}

fn aatom() -> impl Strategy<Value = AAtom> {
    (0..NUM_PREDS).prop_flat_map(|p| {
        proptest::collection::vec(aterm(), pred_arity(p))
            .prop_map(move |args| AAtom { pred: p, args })
    })
}

fn aquery(max_body: usize) -> impl Strategy<Value = AQuery> {
    (
        proptest::collection::vec(aterm(), 0..3),
        proptest::collection::vec(aatom(), 0..=max_body),
    )
        .prop_map(|(head, body)| AQuery { head, body })
}

struct Ctx {
    vocab: Vocabulary,
}

impl Ctx {
    fn new() -> Self {
        Ctx {
            vocab: Vocabulary::new(),
        }
    }

    fn term(&mut self, t: ATerm) -> Term {
        match t {
            ATerm::Var(i) => Term::Var(self.vocab.var(&format!("X{i}"))),
            ATerm::Cst(i) => Term::Cst(self.vocab.cst(&format!("c{i}"))),
        }
    }

    fn atom(&mut self, a: &AAtom) -> Atom {
        let pred = self.vocab.pred(&format!("p{}", a.pred), pred_arity(a.pred));
        let args = a.args.iter().map(|&t| self.term(t)).collect();
        Atom::new(pred, args)
    }

    fn query(&mut self, q: &AQuery) -> Query {
        let name = self.vocab.sym("q");
        let head = q.head.iter().map(|&t| self.term(t)).collect();
        let body = q.body.iter().map(|a| self.atom(a)).collect();
        Query::new(name, head, body)
    }

    /// Materializes a ground instance from abstract atoms by freezing
    /// variables into constants (gives ground, varied instances).
    fn instance(&mut self, atoms: &[AAtom]) -> Instance {
        atoms
            .iter()
            .map(|a| {
                let atom = self.atom(a);
                freeze_atom(&atom)
            })
            .collect()
    }
}

/// Makes a safe variant of a query: drop head terms whose variable is not in
/// the body.
fn safe_head(q: &Query) -> Query {
    let body_vars = q.body_vars();
    let head = q
        .head
        .iter()
        .copied()
        .filter(|t| t.as_var().is_none_or(|v| body_vars.contains(&v)))
        .collect();
    Query::new(q.name, head, q.body.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn freeze_unfreeze_roundtrip(a in aatom()) {
        let mut ctx = Ctx::new();
        let atom = ctx.atom(&a);
        let fact = freeze_atom(&atom);
        prop_assert_eq!(unfreeze_fact(&fact), atom);
    }

    #[test]
    fn substitution_compose_law(t in aterm(), pairs1 in proptest::collection::vec((0..NUM_VARS, aterm()), 0..4), pairs2 in proptest::collection::vec((0..NUM_VARS, aterm()), 0..4)) {
        let mut ctx = Ctx::new();
        let term = ctx.term(t);
        let s1 = Substitution::from_pairs(
            pairs1.iter().map(|&(v, img)| {
                let var = ctx.vocab.var(&format!("X{v}"));
                let image = ctx.term(img);
                (var, image)
            }).collect::<Vec<_>>(),
        );
        let s2 = Substitution::from_pairs(
            pairs2.iter().map(|&(v, img)| {
                let var = ctx.vocab.var(&format!("X{v}"));
                let image = ctx.term(img);
                (var, image)
            }).collect::<Vec<_>>(),
        );
        let composed = s2.compose(&s1);
        prop_assert_eq!(
            composed.apply_term(term),
            s2.apply_term(s1.apply_term(term))
        );
    }

    #[test]
    fn containment_is_reflexive(q in aquery(4)) {
        let mut ctx = Ctx::new();
        let query = ctx.query(&q);
        prop_assert!(is_contained_in(&query, &query));
    }

    #[test]
    fn dropping_an_atom_generalizes(q in aquery(4)) {
        let mut ctx = Ctx::new();
        let query = ctx.query(&q);
        for i in 0..query.size() {
            prop_assert!(is_contained_in(&query, &query.without_atom(i)));
        }
    }

    #[test]
    fn minimize_preserves_equivalence(q in aquery(5)) {
        let mut ctx = Ctx::new();
        let query = ctx.query(&q);
        let m = minimize(&query);
        prop_assert!(m.size() <= query.size());
        prop_assert!(are_equivalent(&query, &m));
        prop_assert!(is_minimal(&m));
    }

    #[test]
    fn evaluation_is_monotone(q in aquery(3), d1 in proptest::collection::vec(aatom(), 0..6), d2 in proptest::collection::vec(aatom(), 0..6)) {
        let mut ctx = Ctx::new();
        let query = safe_head(&ctx.query(&q));
        let small = ctx.instance(&d1);
        let mut big = small.clone();
        big.extend_from(&ctx.instance(&d2));
        let ans_small = answers(&query, &small).unwrap();
        let ans_big = answers(&query, &big).unwrap();
        prop_assert!(ans_small.is_subset(&ans_big));
    }

    #[test]
    fn containment_implies_answer_inclusion(q1 in aquery(3), q2 in aquery(3), d in proptest::collection::vec(aatom(), 0..6)) {
        let mut ctx = Ctx::new();
        let a = safe_head(&ctx.query(&q1));
        let b = safe_head(&ctx.query(&q2));
        let db = ctx.instance(&d);
        if a.head.len() == b.head.len() && is_contained_in(&a, &b) {
            let ans_a = answers(&a, &db).unwrap();
            let ans_b = answers(&b, &db).unwrap();
            prop_assert!(ans_a.is_subset(&ans_b));
        }
    }

    #[test]
    fn has_answer_agrees_with_answers(q in aquery(3), d in proptest::collection::vec(aatom(), 0..6)) {
        let mut ctx = Ctx::new();
        let query = safe_head(&ctx.query(&q));
        let db = ctx.instance(&d);
        let ans = answers(&query, &db).unwrap();
        for tuple in &ans {
            prop_assert!(has_answer(&query, &db, tuple));
        }
    }

    #[test]
    fn canonical_database_witnesses_self_containment(q in aquery(4)) {
        // θū ∈ Q(D_Q): the freezing assignment satisfies Q over D_Q.
        let mut ctx = Ctx::new();
        let query = ctx.query(&q);
        let db = canonical_database(&query);
        let target: Vec<_> = query
            .head
            .iter()
            .map(|&t| magik_relalg::freeze_term(t))
            .collect();
        prop_assert!(has_answer(&query, &db, &target));
    }

    #[test]
    fn instance_roundtrip_through_facts(d in proptest::collection::vec(aatom(), 0..8)) {
        let mut ctx = Ctx::new();
        let db = ctx.instance(&d);
        let copy: Instance = db.iter_facts().collect();
        prop_assert_eq!(db, copy);
    }

    #[test]
    fn insert_is_idempotent(d in proptest::collection::vec(aatom(), 0..8)) {
        let mut ctx = Ctx::new();
        let facts: Vec<Fact> = ctx
            .instance(&d)
            .iter_facts()
            .collect();
        let mut db = Instance::new();
        for f in &facts {
            db.insert(f.clone());
        }
        let len = db.len();
        for f in &facts {
            prop_assert!(!db.insert(f.clone()));
        }
        prop_assert_eq!(db.len(), len);
    }
}
