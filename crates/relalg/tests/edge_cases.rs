//! Edge-case tests for the relational substrate: shapes that the main
//! suites do not hit — propositional (0-ary) relations, high arities,
//! heavy self-joins, and adversarial head patterns.

use magik_relalg::{
    answers, are_equivalent, canonical_database, has_answer, is_contained_in, minimize, Atom, Fact,
    Instance, Query, Term, Vocabulary,
};

#[test]
fn zero_ary_relations_behave_like_propositions() {
    let mut v = Vocabulary::new();
    let flag = v.pred("flag", 0);
    let mut db = Instance::new();
    assert!(db.insert(Fact::new(flag, vec![])));
    assert!(!db.insert(Fact::new(flag, vec![])), "idempotent");
    assert_eq!(db.len(), 1);

    // Boolean query over the proposition.
    let q = Query::boolean(v.sym("q"), vec![Atom::new(flag, vec![])]);
    assert_eq!(answers(&q, &db).unwrap().len(), 1);
    assert!(has_answer(&q, &db, &[]));
    assert!(answers(&q, &Instance::new()).unwrap().is_empty());

    // Containment between propositional queries.
    let other = v.pred("other", 0);
    let q2 = Query::boolean(
        v.sym("q2"),
        vec![Atom::new(flag, vec![]), Atom::new(other, vec![])],
    );
    assert!(is_contained_in(&q2, &q));
    assert!(!is_contained_in(&q, &q2));

    // Canonical database of a propositional query.
    let frozen = canonical_database(&q2);
    assert_eq!(frozen.len(), 2);
}

#[test]
fn wide_relations_evaluate_and_index() {
    let mut v = Vocabulary::new();
    let wide = v.pred("wide", 10);
    let mut db = Instance::new();
    for row in 0..50 {
        let args = (0..10)
            .map(|col| v.cst(&format!("v{}_{}", row % 5, col)))
            .collect();
        db.insert(Fact::new(wide, args));
    }
    assert_eq!(db.len(), 5, "rows repeat modulo 5");
    // Query binding the last column only.
    let vars: Vec<_> = (0..9).map(|i| v.var(&format!("W{i}"))).collect();
    let mut args: Vec<Term> = vars.iter().map(|&x| Term::Var(x)).collect();
    args.push(Term::Cst(v.cst("v3_9")));
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(vars[0])],
        vec![Atom::new(wide, args)],
    );
    let ans = answers(&q, &db).unwrap();
    assert_eq!(ans.len(), 1);
    assert!(ans.contains(&vec![v.cst("v3_0")]));
}

#[test]
fn heavy_self_join_triangle_counting() {
    // Triangles in a directed graph: e(X,Y), e(Y,Z), e(Z,X).
    let mut v = Vocabulary::new();
    let e = v.pred("e", 2);
    let mut db = Instance::new();
    let edges = [
        ("a", "b"),
        ("b", "c"),
        ("c", "a"), // triangle
        ("a", "d"),
        ("d", "b"), // extra path, no triangle
        ("x", "x"), // self-loop = degenerate triangle
    ];
    for (s, t) in edges {
        db.insert(Fact::new(e, vec![v.cst(s), v.cst(t)]));
    }
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let q = Query::new(
        v.sym("tri"),
        vec![Term::Var(x), Term::Var(y), Term::Var(z)],
        vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            Atom::new(e, vec![Term::Var(z), Term::Var(x)]),
        ],
    );
    let ans = answers(&q, &db).unwrap();
    // Rotations of (a,b,c) plus the self-loop (x,x,x).
    assert_eq!(ans.len(), 4);
    assert!(ans.contains(&vec![v.cst("x"), v.cst("x"), v.cst("x")]));
}

#[test]
fn repeated_head_terms_project_correctly() {
    let mut v = Vocabulary::new();
    let p = v.pred("p", 2);
    let mut db = Instance::new();
    db.insert(Fact::new(p, vec![v.cst("a"), v.cst("b")]));
    let (x, y) = (v.var("X"), v.var("Y"));
    // Head repeats X and interleaves a constant.
    let q = Query::new(
        v.sym("q"),
        vec![
            Term::Var(x),
            Term::Cst(v.cst("sep")),
            Term::Var(x),
            Term::Var(y),
        ],
        vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
    );
    let ans = answers(&q, &db).unwrap();
    assert_eq!(
        ans.into_iter().next().unwrap(),
        vec![v.cst("a"), v.cst("sep"), v.cst("a"), v.cst("b")]
    );
}

#[test]
fn minimization_handles_towers_of_redundancy() {
    // q(X) <- p(X,Y1), p(X,Y2), ..., p(X,Yn): collapses to one atom.
    let mut v = Vocabulary::new();
    let p = v.pred("p", 2);
    let x = v.var("X");
    let body: Vec<Atom> = (0..8)
        .map(|i| {
            let y = v.var(&format!("Y{i}"));
            Atom::new(p, vec![Term::Var(x), Term::Var(y)])
        })
        .collect();
    let q = Query::new(v.sym("q"), vec![Term::Var(x)], body);
    let m = minimize(&q);
    assert_eq!(m.size(), 1);
    assert!(are_equivalent(&m, &q));
}

#[test]
fn empty_query_against_empty_instance() {
    let mut v = Vocabulary::new();
    let q = Query::boolean(v.sym("t"), vec![]);
    // The empty conjunction is true even over the empty instance.
    assert_eq!(answers(&q, &Instance::new()).unwrap().len(), 1);
    // Its canonical database is empty, and it is contained in itself.
    assert!(canonical_database(&q).is_empty());
    assert!(is_contained_in(&q, &q));
}

#[test]
fn same_name_different_arity_relations_coexist() {
    let mut v = Vocabulary::new();
    let p1 = v.pred("p", 1);
    let p2 = v.pred("p", 2);
    let mut db = Instance::new();
    db.insert(Fact::new(p1, vec![v.cst("a")]));
    db.insert(Fact::new(p2, vec![v.cst("a"), v.cst("b")]));
    assert_eq!(db.len(), 2);
    let x = v.var("X");
    let q1 = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(p1, vec![Term::Var(x)])],
    );
    assert_eq!(answers(&q1, &db).unwrap().len(), 1);
}

#[test]
fn containment_with_constants_in_both_queries() {
    let mut v = Vocabulary::new();
    let p = v.pred("p", 2);
    let (x, y) = (v.var("X"), v.var("Y"));
    let (a, b) = (v.cst("a"), v.cst("b"));
    let qa = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(p, vec![Term::Var(x), Term::Cst(a)])],
    );
    let qb = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(p, vec![Term::Var(x), Term::Cst(b)])],
    );
    let qv = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
    );
    assert!(!is_contained_in(&qa, &qb));
    assert!(!is_contained_in(&qb, &qa));
    assert!(is_contained_in(&qa, &qv));
    assert!(is_contained_in(&qb, &qv));
    assert!(!is_contained_in(&qv, &qa));
}
