//! Atoms and facts.

use crate::term::{Cst, Term, Var};

/// A predicate (relation symbol with a fixed arity), interned by a
/// [`crate::Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub(crate) u32);

impl Pred {
    /// The raw predicate index (stable within one [`crate::Vocabulary`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A relational atom `R(t₁, …, tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The relation symbol.
    pub pred: Pred,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom. The argument count is the caller's responsibility;
    /// it is validated against the vocabulary by higher layers (parser, CLI).
    pub fn new(pred: Pred, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// `true` iff the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_cst())
    }

    /// Iterates over the variables of the atom, in argument order and with
    /// duplicates.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Converts a ground atom into a [`Fact`]. Returns `None` if the atom
    /// contains a variable.
    pub fn to_fact(&self) -> Option<Fact> {
        let args = self
            .args
            .iter()
            .map(|t| t.as_cst())
            .collect::<Option<Vec<_>>>()?;
        Some(Fact::new(self.pred, args))
    }
}

/// A ground atom `R(c₁, …, cₙ)`: the unit of storage of an
/// [`crate::Instance`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The relation symbol.
    pub pred: Pred,
    /// The constant arguments.
    pub args: Vec<Cst>,
}

impl Fact {
    /// Creates a fact.
    pub fn new(pred: Pred, args: Vec<Cst>) -> Self {
        Fact { pred, args }
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Views this fact as an [`Atom`] (whose arguments are all constants).
    pub fn to_atom(&self) -> Atom {
        Atom::new(self.pred, self.args.iter().map(|&c| Term::Cst(c)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;

    #[test]
    fn atom_groundness_and_vars() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let x = v.var("X");
        let a = v.cst("a");
        let mixed = Atom::new(p, vec![Term::Var(x), Term::Cst(a)]);
        assert!(!mixed.is_ground());
        assert_eq!(mixed.vars().collect::<Vec<_>>(), vec![x]);
        assert_eq!(mixed.arity(), 2);
        assert_eq!(mixed.to_fact(), None);

        let ground = Atom::new(p, vec![Term::Cst(a), Term::Cst(a)]);
        assert!(ground.is_ground());
        let fact = ground.to_fact().unwrap();
        assert_eq!(fact.args, vec![a, a]);
        assert_eq!(fact.to_atom(), ground);
    }

    #[test]
    fn fact_atom_roundtrip() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let f = Fact::new(p, vec![v.cst("a")]);
        assert_eq!(f.to_atom().to_fact().unwrap(), f);
        assert_eq!(f.arity(), 1);
    }
}
