//! Minimization (core computation) of conjunctive queries.
//!
//! A query is *minimal* if every proper subquery is strictly more general
//! (no redundant atoms). Every conjunctive query is equivalent to a minimal
//! one [Chandra–Merlin]; the completeness machinery of the paper (Lemma 9,
//! Theorem 23) requires minimal inputs.
//!
//! Dropping a body atom always generalizes (`Q ⊑ Q₀`), so an atom is
//! redundant iff the subquery without it is still contained in `Q`. We
//! greedily drop redundant atoms until none is left; the result is the core
//! of the query, unique up to variable renaming.

use crate::containment::is_contained_in;
use crate::query::Query;

/// Returns an equivalent minimal query (the *core*), obtained by removing
/// redundant body atoms.
pub fn minimize(q: &Query) -> Query {
    let mut out = q.clone();
    minimize_in_place(&mut out);
    out
}

/// In-place variant of [`minimize`].
pub fn minimize_in_place(q: &mut Query) {
    q.dedup_body();
    let mut i = 0;
    while i < q.body.len() {
        let candidate = q.without_atom(i);
        if is_contained_in(&candidate, q) {
            // The atom at `i` is redundant; the candidate is equivalent.
            *q = candidate;
            // Restart scanning: earlier atoms may have become redundant.
            i = 0;
        } else {
            i += 1;
        }
    }
}

/// `true` iff the query has no redundant body atoms (and no duplicate
/// atoms).
pub fn is_minimal(q: &Query) -> bool {
    let mut deduped = q.clone();
    deduped.dedup_body();
    if deduped.body.len() != q.body.len() {
        return false;
    }
    (0..q.body.len()).all(|i| !is_contained_in(&q.without_atom(i), q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::containment::are_equivalent;
    use crate::term::Term;
    use crate::Vocabulary;

    #[test]
    fn drops_redundant_atom() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let (x, y, u, w) = (v.var("X"), v.var("Y"), v.var("U"), v.var("W"));
        // q(X) ← p(X,Y), p(U,W): the second atom folds into the first.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(p, vec![Term::Var(u), Term::Var(w)]),
            ],
        );
        assert!(!is_minimal(&q));
        let m = minimize(&q);
        assert_eq!(m.size(), 1);
        assert!(are_equivalent(&q, &m));
        assert!(is_minimal(&m));
    }

    #[test]
    fn keeps_non_redundant_atoms() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let r = v.pred("r", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(r, vec![Term::Var(y)]),
            ],
        );
        assert!(is_minimal(&q));
        let m = minimize(&q);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn paper_lemma9_counterexample_query_is_not_minimal() {
        // Q(X) ← R(X, a), R(X, Y) — used after Lemma 9 in the paper; the
        // general atom R(X,Y) is subsumed by R(X,a).
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let a = v.cst("a");
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Cst(a)]),
                Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
            ],
        );
        assert!(!is_minimal(&q));
        let m = minimize(&q);
        assert_eq!(m.size(), 1);
        assert_eq!(m.body[0].args[1], Term::Cst(a));
    }

    #[test]
    fn duplicate_atoms_are_removed() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let x = v.var("X");
        let a = Atom::new(p, vec![Term::Var(x)]);
        let q = Query::new(v.sym("q"), vec![Term::Var(x)], vec![a.clone(), a]);
        assert!(!is_minimal(&q));
        assert_eq!(minimize(&q).size(), 1);
    }

    #[test]
    fn cycle_queries_are_minimal() {
        let mut v = Vocabulary::new();
        let conn = v.pred("conn", 2);
        let vars: Vec<_> = (0..3).map(|i| v.var(&format!("X{i}"))).collect();
        let body: Vec<_> = (0..3)
            .map(|i| Atom::new(conn, vec![Term::Var(vars[i]), Term::Var(vars[(i + 1) % 3])]))
            .collect();
        let q = Query::new(v.sym("q"), vec![Term::Var(vars[0])], body);
        assert!(is_minimal(&q));
        assert_eq!(minimize(&q).size(), 3);
    }

    #[test]
    fn minimization_preserves_equivalence_on_mixed_query() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let (x, y, z, u) = (v.var("X"), v.var("Y"), v.var("Z"), v.var("U"));
        // q(X) ← p(X,Y), p(X,Z), p(Z,U): p(X,Y) folds onto p(X,Z).
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(p, vec![Term::Var(x), Term::Var(z)]),
                Atom::new(p, vec![Term::Var(z), Term::Var(u)]),
            ],
        );
        let m = minimize(&q);
        assert_eq!(m.size(), 2);
        assert!(are_equivalent(&q, &m));
    }

    #[test]
    fn boolean_query_minimizes_to_reachable_core() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        // b ← e(X,Y), e(Y,X), e(X,Z): e(X,Z) folds onto e(X,Y).
        let q = Query::boolean(
            v.sym("b"),
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(e, vec![Term::Var(y), Term::Var(x)]),
                Atom::new(e, vec![Term::Var(x), Term::Var(z)]),
            ],
        );
        let m = minimize(&q);
        assert_eq!(m.size(), 2);
        assert!(are_equivalent(&q, &m));
    }
}
