//! Stable binary encoding of the relational-algebra data model.
//!
//! The durability layer (`magik-storage`) persists vocabularies, facts and
//! instances; this module defines the byte format they travel in. The
//! format is deliberately simple and versioned at the *container* level
//! (WAL segments and checkpoint files carry magic + version headers), so
//! this module only has to stay stable within one container version:
//!
//! * integers are LEB128 **varints** ([`put_varint`] / [`Reader::varint`]);
//! * strings are length-prefixed UTF-8;
//! * structured values are tagged concatenations of the above.
//!
//! Decoding is **defensive**: every index is validated against the
//! vocabulary it points into, every count is sanity-checked against the
//! bytes remaining, and failures come back as [`CodecError`] — never a
//! panic, whatever the input bytes. This is what lets the recovery path
//! treat a CRC-valid-but-undecodable record as clean corruption instead
//! of undefined behaviour.

use std::collections::HashMap;
use std::fmt;

use crate::atom::{Atom, Fact, Pred};
use crate::instance::Instance;
use crate::term::{Cst, Term, Var};
use crate::vocab::{Symbol, Vocabulary};

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated,
    /// The input is complete but structurally invalid (bad tag, index out
    /// of range, duplicate interned entry, …).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("truncated input"),
            CodecError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `n` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut n: u64) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` iff every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint (at most 10 bytes — a 64-bit value).
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut n: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::Malformed("varint overflows u64"));
            }
            n |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::Malformed("varint too long"));
            }
        }
    }

    /// Reads a varint that must fit a `usize` count of items at least
    /// `min_item_bytes` wide each — rejecting counts the remaining bytes
    /// cannot possibly hold, so corrupt input cannot provoke huge
    /// allocations.
    pub fn count(&mut self, min_item_bytes: usize) -> Result<usize, CodecError> {
        let n = self.varint()?;
        let n = usize::try_from(n).map_err(|_| CodecError::Malformed("count overflows usize"))?;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Malformed("count exceeds remaining bytes"));
        }
        Ok(n)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.count(1)?;
        let bytes = self.bytes(len)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::Malformed("string is not UTF-8"))
    }
}

fn check_index(idx: u64, len: usize, what: &'static str) -> Result<u32, CodecError> {
    if (idx as usize) < len {
        Ok(idx as u32)
    } else {
        Err(CodecError::Malformed(what))
    }
}

/// Encodes a vocabulary: interned strings, variable names, predicate
/// signatures and the fresh-variable counter. The derived hash maps are
/// rebuilt on decode.
pub fn encode_vocabulary(v: &Vocabulary, out: &mut Vec<u8>) {
    put_varint(out, v.strings.len() as u64);
    for s in &v.strings {
        put_str(out, s);
    }
    put_varint(out, v.var_names.len() as u64);
    for sym in &v.var_names {
        put_varint(out, u64::from(sym.0));
    }
    put_varint(out, v.preds.len() as u64);
    for &(sym, arity) in &v.preds {
        put_varint(out, u64::from(sym.0));
        put_varint(out, arity as u64);
    }
    put_varint(out, v.fresh_counter);
}

/// The widest arity a decoded predicate may declare. The reasoning stack
/// never mints wide relations; anything past this is corrupt input.
const MAX_ARITY: u64 = 1 << 16;

/// Decodes a vocabulary, rebuilding the interning maps and validating
/// every cross-reference (string indexes, duplicate spellings, duplicate
/// variable names, duplicate predicate signatures).
pub fn decode_vocabulary(r: &mut Reader<'_>) -> Result<Vocabulary, CodecError> {
    let n_strings = r.count(1)?;
    let mut strings = Vec::with_capacity(n_strings);
    let mut by_string = HashMap::with_capacity(n_strings);
    for i in 0..n_strings {
        let s = r.str()?.to_owned();
        if by_string.insert(s.clone(), Symbol(i as u32)).is_some() {
            return Err(CodecError::Malformed("duplicate interned string"));
        }
        strings.push(s);
    }
    let n_vars = r.count(1)?;
    let mut var_names = Vec::with_capacity(n_vars);
    let mut var_by_name = HashMap::with_capacity(n_vars);
    for i in 0..n_vars {
        let sym = Symbol(check_index(
            r.varint()?,
            strings.len(),
            "variable name out of range",
        )?);
        if var_by_name.insert(sym, Var(i as u32)).is_some() {
            return Err(CodecError::Malformed("duplicate variable name"));
        }
        var_names.push(sym);
    }
    let n_preds = r.count(1)?;
    let mut preds = Vec::with_capacity(n_preds);
    let mut pred_by_sig = HashMap::with_capacity(n_preds);
    for i in 0..n_preds {
        let sym = Symbol(check_index(
            r.varint()?,
            strings.len(),
            "predicate name out of range",
        )?);
        let arity = r.varint()?;
        if arity > MAX_ARITY {
            return Err(CodecError::Malformed("predicate arity out of range"));
        }
        let arity = arity as usize;
        if pred_by_sig.insert((sym, arity), Pred(i as u32)).is_some() {
            return Err(CodecError::Malformed("duplicate predicate signature"));
        }
        preds.push((sym, arity));
    }
    let fresh_counter = r.varint()?;
    Ok(Vocabulary {
        strings,
        by_string,
        var_names,
        var_by_name,
        preds,
        pred_by_sig,
        fresh_counter,
    })
}

const TAG_CST_DATA: u8 = 0;
const TAG_CST_FROZEN: u8 = 1;
const TAG_TERM_VAR: u8 = 0;
const TAG_TERM_CST: u8 = 1;

/// Encodes a constant.
pub fn encode_cst(c: Cst, out: &mut Vec<u8>) {
    match c {
        Cst::Data(sym) => {
            out.push(TAG_CST_DATA);
            put_varint(out, u64::from(sym.0));
        }
        Cst::Frozen(v) => {
            out.push(TAG_CST_FROZEN);
            put_varint(out, v.index() as u64);
        }
    }
}

/// Decodes a constant, validating its index against `vocab`.
pub fn decode_cst(r: &mut Reader<'_>, vocab: &Vocabulary) -> Result<Cst, CodecError> {
    match r.u8()? {
        TAG_CST_DATA => Ok(Cst::Data(Symbol(check_index(
            r.varint()?,
            vocab.strings.len(),
            "constant symbol out of range",
        )?))),
        TAG_CST_FROZEN => Ok(Cst::Frozen(Var(check_index(
            r.varint()?,
            vocab.var_names.len(),
            "frozen variable out of range",
        )?))),
        _ => Err(CodecError::Malformed("unknown constant tag")),
    }
}

/// Encodes a term.
pub fn encode_term(t: Term, out: &mut Vec<u8>) {
    match t {
        Term::Var(v) => {
            out.push(TAG_TERM_VAR);
            put_varint(out, v.index() as u64);
        }
        Term::Cst(c) => {
            out.push(TAG_TERM_CST);
            encode_cst(c, out);
        }
    }
}

/// Decodes a term, validating its indexes against `vocab`.
pub fn decode_term(r: &mut Reader<'_>, vocab: &Vocabulary) -> Result<Term, CodecError> {
    match r.u8()? {
        TAG_TERM_VAR => Ok(Term::Var(Var(check_index(
            r.varint()?,
            vocab.var_names.len(),
            "variable out of range",
        )?))),
        TAG_TERM_CST => Ok(Term::Cst(decode_cst(r, vocab)?)),
        _ => Err(CodecError::Malformed("unknown term tag")),
    }
}

fn decode_pred(r: &mut Reader<'_>, vocab: &Vocabulary) -> Result<Pred, CodecError> {
    Ok(Pred(check_index(
        r.varint()?,
        vocab.preds.len(),
        "predicate out of range",
    )?))
}

/// Encodes an atom: predicate id plus tagged argument terms.
pub fn encode_atom(a: &Atom, out: &mut Vec<u8>) {
    put_varint(out, a.pred.index() as u64);
    put_varint(out, a.args.len() as u64);
    for &t in &a.args {
        encode_term(t, out);
    }
}

/// Decodes an atom, validating the predicate, the argument count against
/// its declared arity, and every argument term.
pub fn decode_atom(r: &mut Reader<'_>, vocab: &Vocabulary) -> Result<Atom, CodecError> {
    let pred = decode_pred(r, vocab)?;
    let n_args = r.count(1)?;
    if n_args != vocab.arity(pred) {
        return Err(CodecError::Malformed("atom argument count != arity"));
    }
    let mut args = Vec::with_capacity(n_args);
    for _ in 0..n_args {
        args.push(decode_term(r, vocab)?);
    }
    Ok(Atom::new(pred, args))
}

/// Encodes a fact: predicate id plus constant arguments.
pub fn encode_fact(f: &Fact, out: &mut Vec<u8>) {
    put_varint(out, f.pred.index() as u64);
    put_varint(out, f.args.len() as u64);
    for &c in &f.args {
        encode_cst(c, out);
    }
}

/// Decodes a fact, validating the predicate, the argument count against
/// its declared arity, and every argument constant.
pub fn decode_fact(r: &mut Reader<'_>, vocab: &Vocabulary) -> Result<Fact, CodecError> {
    let pred = decode_pred(r, vocab)?;
    let n_args = r.count(1)?;
    if n_args != vocab.arity(pred) {
        return Err(CodecError::Malformed("fact argument count != arity"));
    }
    let mut args = Vec::with_capacity(n_args);
    for _ in 0..n_args {
        args.push(decode_cst(r, vocab)?);
    }
    Ok(Fact::new(pred, args))
}

/// Encodes every fact of an iterator as a count-prefixed sequence. The
/// per-relation/per-column indexes are derived state and are rebuilt by
/// [`decode_instance`].
pub fn encode_instance(facts: impl ExactSizeIterator<Item = Fact>, out: &mut Vec<u8>) {
    put_varint(out, facts.len() as u64);
    for f in facts {
        encode_fact(&f, out);
    }
}

/// Decodes an instance encoded by [`encode_instance`], rebuilding the
/// indexes by insertion. Duplicate facts are rejected (the encoder never
/// produces them, so their presence flags corruption).
pub fn decode_instance(r: &mut Reader<'_>, vocab: &Vocabulary) -> Result<Instance, CodecError> {
    let n = r.count(2)?;
    let mut db = Instance::new();
    for _ in 0..n {
        if !db.insert(decode_fact(r, vocab)?) {
            return Err(CodecError::Malformed("duplicate fact in instance"));
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.pred("pupil", 3);
        v.pred("school", 3);
        v.var("N");
        v.var("S");
        v.fresh_var("N");
        v.cst("merano");
        v.cst("primary");
        v
    }

    #[test]
    fn vocabulary_roundtrips() {
        let v = sample_vocab();
        let mut buf = Vec::new();
        encode_vocabulary(&v, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_vocabulary(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.num_preds(), v.num_preds());
        assert_eq!(back.num_vars(), v.num_vars());
        assert_eq!(back.lookup_pred("pupil", 3), v.lookup_pred("pupil", 3));
        assert_eq!(back.lookup("merano"), v.lookup("merano"));
        // The fresh counter survives, so post-recovery fresh variables
        // cannot collide with pre-crash ones.
        let mut back = back;
        let mut v = v;
        assert_eq!(back.fresh_var("N"), v.fresh_var("N"));
    }

    #[test]
    fn fact_and_atom_roundtrip() {
        let mut v = sample_vocab();
        let pupil = v.pred("pupil", 3);
        let f = Fact::new(pupil, vec![v.cst("anna"), v.cst("c1"), v.cst("hofer")]);
        let a = Atom::new(
            pupil,
            vec![
                Term::Var(v.var("N")),
                Term::Cst(v.cst("c1")),
                Term::Cst(Cst::Frozen(v.var("S"))),
            ],
        );
        let mut buf = Vec::new();
        encode_fact(&f, &mut buf);
        encode_atom(&a, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_fact(&mut r, &v).unwrap(), f);
        assert_eq!(decode_atom(&mut r, &v).unwrap(), a);
        assert!(r.is_empty());
    }

    #[test]
    fn instance_roundtrips() {
        let mut v = sample_vocab();
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let mut db = Instance::new();
        db.insert(Fact::new(
            pupil,
            vec![v.cst("anna"), v.cst("c1"), v.cst("hofer")],
        ));
        db.insert(Fact::new(
            school,
            vec![v.cst("hofer"), v.cst("primary"), v.cst("merano")],
        ));
        let mut buf = Vec::new();
        encode_instance(db.iter_facts().collect::<Vec<_>>().into_iter(), &mut buf);
        let back = decode_instance(&mut Reader::new(&buf), &v).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn varint_roundtrips_at_boundaries() {
        for n in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, n);
            assert_eq!(Reader::new(&buf).varint().unwrap(), n, "n = {n}");
        }
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let v = sample_vocab();
        let mut buf = Vec::new();
        encode_vocabulary(&v, &mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_vocabulary(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn out_of_range_indexes_are_malformed() {
        let v = sample_vocab();
        // A fact over a predicate id past the vocabulary.
        let mut buf = Vec::new();
        put_varint(&mut buf, 99);
        put_varint(&mut buf, 0);
        assert_eq!(
            decode_fact(&mut Reader::new(&buf), &v),
            Err(CodecError::Malformed("predicate out of range"))
        );
        // Wrong argument count for a valid predicate.
        let mut buf = Vec::new();
        put_varint(&mut buf, 0); // pupil/3
        put_varint(&mut buf, 1);
        buf.push(TAG_CST_DATA);
        put_varint(&mut buf, 0);
        assert_eq!(
            decode_fact(&mut Reader::new(&buf), &v),
            Err(CodecError::Malformed("fact argument count != arity"))
        );
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::from(u32::MAX)); // claimed string count
        assert!(matches!(
            decode_vocabulary(&mut Reader::new(&buf)),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn overlong_varint_is_malformed() {
        let buf = [0x80u8; 11];
        assert!(Reader::new(&buf).varint().is_err());
    }
}
