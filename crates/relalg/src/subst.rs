//! Substitutions and the freezing map θ.

use std::collections::BTreeMap;

use crate::atom::{Atom, Fact};
use crate::instance::Instance;
use crate::query::Query;
use crate::term::{Cst, Term, Var};

/// A substitution: a finite mapping from variables to terms.
///
/// Applying a substitution replaces every mapped variable by its image and
/// leaves all other terms unchanged. Substitutions are *not* applied
/// recursively — the image terms are taken literally — matching the
/// first-order, non-recursive substitutions of the paper. Idempotent
/// substitutions (e.g. most general unifiers produced by `magik-unify`)
/// therefore behave as expected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Var, Term>,
}

impl Substitution {
    /// The identity substitution.
    pub fn identity() -> Self {
        Self::default()
    }

    /// Builds a substitution from `(variable, image)` pairs. Later pairs
    /// overwrite earlier ones.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Term)>) -> Self {
        Substitution {
            map: pairs.into_iter().collect(),
        }
    }

    /// `true` iff no variable is mapped.
    pub fn is_identity(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of mapped variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff the substitution maps no variable.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Binds `var` to `term`, replacing any previous binding.
    pub fn bind(&mut self, var: Var, term: Term) {
        self.map.insert(var, term);
    }

    /// The image of `var`, if bound.
    pub fn get(&self, var: Var) -> Option<Term> {
        self.map.get(&var).copied()
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Term)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, t: Term) -> Term {
        match t {
            Term::Var(v) => self.get(v).unwrap_or(t),
            Term::Cst(_) => t,
        }
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom::new(a.pred, a.args.iter().map(|&t| self.apply_term(t)).collect())
    }

    /// Applies the substitution to a query (head and body): the
    /// *instantiation* `αQ` of the paper.
    pub fn apply_query(&self, q: &Query) -> Query {
        Query::new(
            q.name,
            q.head.iter().map(|&t| self.apply_term(t)).collect(),
            q.body.iter().map(|a| self.apply_atom(a)).collect(),
        )
    }

    /// The composition `self ∘ first`: applying the result is equivalent to
    /// applying `first` and then `self`.
    pub fn compose(&self, first: &Substitution) -> Substitution {
        let mut map: BTreeMap<Var, Term> = first
            .map
            .iter()
            .map(|(&v, &t)| (v, self.apply_term(t)))
            .collect();
        for (&v, &t) in &self.map {
            map.entry(v).or_insert(t);
        }
        Substitution { map }
    }

    /// Restricts the substitution to the variables satisfying `keep`.
    pub fn restrict<F>(&self, mut keep: F) -> Substitution
    where
        F: FnMut(Var) -> bool,
    {
        Substitution {
            map: self
                .map
                .iter()
                .filter(|(&v, _)| keep(v))
                .map(|(&v, &t)| (v, t))
                .collect(),
        }
    }
}

impl FromIterator<(Var, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Substitution::from_pairs(iter)
    }
}

/// Freezes a term: variables become their frozen constants (θ), constants
/// are unchanged.
pub fn freeze_term(t: Term) -> Cst {
    match t {
        Term::Var(v) => Cst::Frozen(v),
        Term::Cst(c) => c,
    }
}

/// Freezes an atom into a fact (θ applied to every argument).
pub fn freeze_atom(a: &Atom) -> Fact {
    Fact::new(a.pred, a.args.iter().map(|&t| freeze_term(t)).collect())
}

/// Unfreezes a constant back into a term (θ⁻¹): frozen variables thaw to
/// variables, data constants are unchanged.
pub fn unfreeze_term(c: Cst) -> Term {
    match c {
        Cst::Frozen(v) => Term::Var(v),
        Cst::Data(_) => Term::Cst(c),
    }
}

/// Unfreezes a fact into an atom (θ⁻¹ applied to every argument).
pub fn unfreeze_fact(f: &Fact) -> Atom {
    Atom::new(f.pred, f.args.iter().map(|&c| unfreeze_term(c)).collect())
}

/// Unfreezes an atom whose arguments may contain frozen constants.
pub fn unfreeze_atom(a: &Atom) -> Atom {
    Atom::new(
        a.pred,
        a.args
            .iter()
            .map(|&t| match t {
                Term::Cst(c) => unfreeze_term(c),
                Term::Var(_) => t,
            })
            .collect(),
    )
}

/// The canonical database `D_Q` of a query: the instance obtained by
/// freezing every body atom.
pub fn canonical_database(q: &Query) -> Instance {
    let mut db = Instance::new();
    for a in &q.body {
        db.insert(freeze_atom(a));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;

    #[test]
    fn apply_replaces_only_bound_vars() {
        let mut v = Vocabulary::new();
        let (x, y) = (v.var("X"), v.var("Y"));
        let a = v.cst("a");
        let s = Substitution::from_pairs([(x, Term::Cst(a))]);
        assert_eq!(s.apply_term(Term::Var(x)), Term::Cst(a));
        assert_eq!(s.apply_term(Term::Var(y)), Term::Var(y));
        assert_eq!(s.apply_term(Term::Cst(a)), Term::Cst(a));
    }

    #[test]
    fn apply_query_instantiates_head_and_body() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        let c = v.cst("c");
        let s = Substitution::from_pairs([(y, Term::Cst(c))]);
        let qi = s.apply_query(&q);
        assert_eq!(qi.head, vec![Term::Var(x)]);
        assert_eq!(qi.body[0].args, vec![Term::Var(x), Term::Cst(c)]);
    }

    #[test]
    fn composition_order() {
        let mut v = Vocabulary::new();
        let (x, y) = (v.var("X"), v.var("Y"));
        let c = v.cst("c");
        // first: X -> Y; second: Y -> c. (second ∘ first)(X) = c.
        let first = Substitution::from_pairs([(x, Term::Var(y))]);
        let second = Substitution::from_pairs([(y, Term::Cst(c))]);
        let comp = second.compose(&first);
        assert_eq!(comp.apply_term(Term::Var(x)), Term::Cst(c));
        assert_eq!(comp.apply_term(Term::Var(y)), Term::Cst(c));
    }

    #[test]
    fn compose_prefers_first_for_shared_domain() {
        let mut v = Vocabulary::new();
        let x = v.var("X");
        let (a, b) = (v.cst("a"), v.cst("b"));
        let first = Substitution::from_pairs([(x, Term::Cst(a))]);
        let second = Substitution::from_pairs([(x, Term::Cst(b))]);
        // (second ∘ first)(X) must equal second(first(X)) = second(a) = a.
        assert_eq!(
            second.compose(&first).apply_term(Term::Var(x)),
            Term::Cst(a)
        );
    }

    #[test]
    fn freeze_unfreeze_roundtrip() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let x = v.var("X");
        let a = v.cst("a");
        let atom = Atom::new(p, vec![Term::Var(x), Term::Cst(a)]);
        let fact = freeze_atom(&atom);
        assert_eq!(fact.args[0], Cst::Frozen(x));
        assert_eq!(fact.args[1], a);
        assert_eq!(unfreeze_fact(&fact), atom);
    }

    #[test]
    fn canonical_database_contains_frozen_body() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let x = v.var("X");
        let q = Query::new(v.sym("q"), vec![], vec![Atom::new(p, vec![Term::Var(x)])]);
        let db = canonical_database(&q);
        assert_eq!(db.len(), 1);
        assert!(db.contains(&Fact::new(p, vec![Cst::Frozen(x)])));
    }

    #[test]
    fn restrict_keeps_selected_vars() {
        let mut v = Vocabulary::new();
        let (x, y) = (v.var("X"), v.var("Y"));
        let a = v.cst("a");
        let s = Substitution::from_pairs([(x, Term::Cst(a)), (y, Term::Cst(a))]);
        let r = s.restrict(|var| var == x);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(x), Some(Term::Cst(a)));
        assert_eq!(r.get(y), None);
    }
}
