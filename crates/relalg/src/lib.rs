//! Relational-algebra substrate for MAGIK-rs.
//!
//! This crate provides the data model and algorithms that the completeness
//! reasoner of [Corman, Nutt, Savković, *Complete Approximations of
//! Incomplete Queries*] is built on:
//!
//! * interned **symbols**, **variables**, **constants** and **predicates**
//!   ([`Vocabulary`], [`Symbol`], [`Var`], [`Cst`], [`Pred`]);
//! * **atoms**, **facts** and **conjunctive queries** ([`Atom`], [`Fact`],
//!   [`Query`]) — queries are *generalized* conjunctive queries: the safety
//!   condition is not enforced structurally (the paper's Section 3 needs
//!   unsafe intermediate queries), it is checked by [`Query::is_safe`];
//! * **substitutions** and the freezing map θ ([`Substitution`],
//!   [`freeze_atom`], [`canonical_database`]);
//! * database **instances** with per-column indexes and cheap
//!   copy-on-write **snapshots** ([`Instance`], [`Relation`],
//!   [`Snapshot`], [`StoreView`]);
//! * conjunctive-query **evaluation** by compiled register plans (the
//!   [`exec`] plan IR: atom order, access paths and slot layout fixed at
//!   compile time; [`answers`], [`has_answer`], [`homomorphisms`]);
//! * **containment**, **equivalence** and **minimization** of conjunctive
//!   queries, following Chandra–Merlin ([`is_contained_in`],
//!   [`are_equivalent`], [`minimize`], [`is_minimal`]).
//!
//! # Example
//!
//! ```
//! use magik_relalg::{Vocabulary, Instance, Query, Term, answers};
//!
//! let mut v = Vocabulary::new();
//! let pupil = v.pred("pupil", 3);
//! let (n, c, s) = (v.var("N"), v.var("C"), v.var("S"));
//! let q = Query::new(
//!     v.sym("q"),
//!     vec![Term::Var(n)],
//!     vec![Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)])],
//! );
//! # use magik_relalg::Atom;
//!
//! let mut db = Instance::new();
//! db.insert(Fact::new(pupil, vec![v.cst("john"), v.cst("1a"), v.cst("goethe")]));
//! # use magik_relalg::Fact;
//!
//! let ans = answers(&q, &db).unwrap();
//! assert_eq!(ans.len(), 1);
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod atom;
pub mod batch;
pub mod codec;
mod containment;
mod display;
mod eval;
pub mod exec;
mod instance;
mod minimize;
mod query;
mod subst;
mod term;
mod vocab;

pub use atom::{Atom, Fact, Pred};
pub use batch::{Batch, BatchPlan, JoinStrategy};
pub use containment::{are_equivalent, is_contained_in, is_strictly_contained_in};
pub use display::{DisplayWith, WithVocab};
pub use eval::{
    answers, has_answer, has_answer_witness, homomorphisms, Answer, AnswerSet, EvalError, Witness,
    WitnessStep,
};
pub use instance::{Instance, Relation, RowRef, Snapshot, StoreView};
pub use minimize::{is_minimal, minimize, minimize_in_place};
pub use query::Query;
pub use subst::{
    canonical_database, freeze_atom, freeze_term, unfreeze_atom, unfreeze_fact, unfreeze_term,
    Substitution,
};
pub use term::{Cst, Term, Var};
pub use vocab::{Symbol, Vocabulary};
