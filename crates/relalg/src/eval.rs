//! Conjunctive-query evaluation over compiled plans.
//!
//! Evaluation searches for assignments α of the query's variables to
//! constants of the instance such that αB ⊆ D. The search itself lives in
//! [`crate::exec`]: each entry point compiles the body into a [`Plan`]
//! (atom order and index access paths fixed up front from the instance's
//! statistics) and runs it in the appropriate mode — enumerate-all for
//! [`answers`] and [`homomorphisms`], first-match for [`has_answer`].

use std::collections::BTreeSet;
use std::fmt;

use crate::atom::{Atom, Pred};
use crate::exec::{ExecStats, Plan, Projection};
use crate::instance::Instance;
use crate::query::Query;
use crate::subst::Substitution;
use crate::term::{Cst, Term, Var};

/// One answer tuple: the image of the head terms under a satisfying
/// assignment.
pub type Answer = Vec<Cst>;

/// The answer set of a query over an instance, ordered for deterministic
/// iteration.
pub type AnswerSet = BTreeSet<Answer>;

/// Errors raised by query evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// The query has a head variable that does not occur in the body, so
    /// its answer set would be infinite (see the paper's discussion of
    /// generalized conjunctive queries in Section 3).
    UnsafeQuery(Var),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnsafeQuery(v) => {
                write!(f, "unsafe query: head variable #{} not in body", v.index())
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a query over an instance: the set of answers
/// `{αū | αB ⊆ D}`.
///
/// Compiles a [`Plan`] for the body (ordered by the instance's statistics)
/// and enumerates all rows; see [`crate::exec`] for the plan IR. Returns
/// [`EvalError::UnsafeQuery`] if a head variable does not occur in the
/// body (the answer set would be infinite).
pub fn answers(q: &Query, db: &Instance) -> Result<AnswerSet, EvalError> {
    let body_vars = q.body_vars();
    if let Some(v) = q.head_vars().into_iter().find(|v| !body_vars.contains(v)) {
        return Err(EvalError::UnsafeQuery(v));
    }
    let plan = Plan::compile(&q.body, &BTreeSet::new(), Some(db));
    let head = Projection::compile(&q.head, &plan).map_err(EvalError::UnsafeQuery)?;
    let mut out = AnswerSet::new();
    let mut stats = ExecStats::default();
    plan.run(db, &[], &mut stats, &mut |row| {
        out.insert(head.emit(row));
        true
    });
    Ok(out)
}

/// Decides whether `target` is an answer of `q` over `db`, i.e. whether
/// there is an assignment α with αB ⊆ D and αū = target.
///
/// Unlike [`answers`], this works for **generalized** (unsafe) queries: head
/// variables missing from the body are simply bound by the target tuple.
/// Returns `false` if the arities of `target` and the head differ.
///
/// Runs the compiled plan in first-match mode: the head variables are
/// declared bound, seeded from `target`, and the search stops at the first
/// witness.
pub fn has_answer(q: &Query, db: &Instance, target: &[Cst]) -> bool {
    if q.head.len() != target.len() {
        return false;
    }
    // Seed the assignment from the head/target correspondence.
    let mut seed: Vec<(Var, Cst)> = Vec::new();
    for (&t, &c) in q.head.iter().zip(target) {
        match t {
            Term::Cst(tc) => {
                if tc != c {
                    return false;
                }
            }
            Term::Var(v) => match seed.iter().find(|&&(sv, _)| sv == v) {
                Some(&(_, bound)) => {
                    if bound != c {
                        return false;
                    }
                }
                None => seed.push((v, c)),
            },
        }
    }
    let bound: BTreeSet<Var> = seed.iter().map(|&(v, _)| v).collect();
    let plan = Plan::compile(&q.body, &bound, Some(db));
    plan.first_match(db, &seed, &mut ExecStats::default())
}

/// One step of the plan that produced a [`Witness`]: which body atom the
/// op matched and on which predicate, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessStep {
    /// Index of the matched atom in the source body.
    pub atom: usize,
    /// The predicate the op matched against.
    pub pred: Pred,
    /// Whether the op probed an index (`true`) or scanned (`false`).
    pub probed: bool,
}

/// A witness for a positive [`has_answer`] verdict: the satisfying
/// assignment together with the plan ops that found it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The satisfying assignment, one `(variable, constant)` pair per
    /// body/head variable, sorted by variable for determinism.
    pub binding: Vec<(Var, Cst)>,
    /// The plan steps (atom order and access path) that produced it.
    pub ops: Vec<WitnessStep>,
}

/// Like [`has_answer`], but on success returns the witnessing binding and
/// the plan ops that produced it instead of a bare `true`.
///
/// Uses the same seeded first-match search as [`has_answer`]; the extra
/// cost is one row capture on the (single) accepted match, so callers that
/// only need the boolean should keep using [`has_answer`].
pub fn has_answer_witness(q: &Query, db: &Instance, target: &[Cst]) -> Option<Witness> {
    if q.head.len() != target.len() {
        return None;
    }
    let mut seed: Vec<(Var, Cst)> = Vec::new();
    for (&t, &c) in q.head.iter().zip(target) {
        match t {
            Term::Cst(tc) => {
                if tc != c {
                    return None;
                }
            }
            Term::Var(v) => match seed.iter().find(|&&(sv, _)| sv == v) {
                Some(&(_, bound)) => {
                    if bound != c {
                        return None;
                    }
                }
                None => seed.push((v, c)),
            },
        }
    }
    let bound: BTreeSet<Var> = seed.iter().map(|&(v, _)| v).collect();
    let plan = Plan::compile(&q.body, &bound, Some(db));
    let mut binding: Option<Vec<(Var, Cst)>> = None;
    plan.run(db, &seed, &mut ExecStats::default(), &mut |row| {
        let mut pairs: Vec<(Var, Cst)> = seed.clone();
        for (v, c) in row.iter() {
            if !pairs.iter().any(|&(pv, _)| pv == v) {
                pairs.push((v, c));
            }
        }
        pairs.sort_by_key(|&(v, _)| v);
        binding = Some(pairs);
        false // stop at the first witness
    });
    let binding = binding?;
    let ops = plan
        .ops()
        .iter()
        .map(|op| WitnessStep {
            atom: op.atom,
            pred: op.pred,
            probed: matches!(op.access, crate::exec::Access::Probe { .. }),
        })
        .collect();
    Some(Witness { binding, ops })
}

/// Enumerates all homomorphisms from `body` into `db`, as ground
/// substitutions over the variables of `body`.
///
/// Mostly useful for tests and for the Datalog engine; prefer [`answers`]
/// when only head images are needed.
pub fn homomorphisms(body: &[Atom], db: &Instance) -> Vec<Substitution> {
    let plan = Plan::compile(body, &BTreeSet::new(), Some(db));
    let mut out = Vec::new();
    plan.run(db, &[], &mut ExecStats::default(), &mut |row| {
        out.push(Substitution::from_pairs(
            row.iter().map(|(v, c)| (v, Term::Cst(c))),
        ));
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::Vocabulary;

    /// The running-example database of the paper (Example 1).
    fn school_db(v: &mut Vocabulary) -> Instance {
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let learns = v.pred("learns", 2);
        let mut db = Instance::new();
        let f = |v: &mut Vocabulary, p, args: &[&str]| {
            Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
        };
        db.insert(f(v, school, &["goethe", "primary", "merano"]));
        db.insert(f(v, school, &["dante", "middle", "bolzano"]));
        db.insert(f(v, pupil, &["john", "c1", "goethe"]));
        db.insert(f(v, pupil, &["mary", "c1", "goethe"]));
        db.insert(f(v, pupil, &["luca", "c2", "dante"]));
        db.insert(f(v, learns, &["john", "english"]));
        db.insert(f(v, learns, &["luca", "german"]));
        db
    }

    #[test]
    fn join_two_atoms() {
        let mut v = Vocabulary::new();
        let db = school_db(&mut v);
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let (n, c, s, t) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"));
        // Pupils of schools in merano.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(
                    school,
                    vec![Term::Var(s), Term::Var(t), Term::Cst(v.cst("merano"))],
                ),
            ],
        );
        let ans = answers(&q, &db).unwrap();
        let names: Vec<_> = ans.iter().map(|a| a[0]).collect();
        assert_eq!(names, vec![v.cst("john"), v.cst("mary")]);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a"), v.cst("a")]));
        db.insert(Fact::new(p, vec![v.cst("a"), v.cst("b")]));
        let x = v.var("X");
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(x)])],
        );
        let ans = answers(&q, &db).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![v.cst("a")]));
    }

    #[test]
    fn empty_body_boolean_query_is_true() {
        let mut v = Vocabulary::new();
        let q = Query::boolean(v.sym("q"), vec![]);
        let db = Instance::new();
        let ans = answers(&q, &db).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Vec::new()));
        assert!(has_answer(&q, &db, &[]));
    }

    #[test]
    fn missing_relation_yields_no_answers() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let x = v.var("X");
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        let ans = answers(&q, &Instance::new()).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn unsafe_query_is_rejected_by_answers() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(y)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        assert_eq!(
            answers(&q, &Instance::new()),
            Err(EvalError::UnsafeQuery(y))
        );
    }

    #[test]
    fn has_answer_handles_unsafe_queries() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a")]));
        // q(Y) ← p(X): any target works as long as the body is satisfiable.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(y)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        assert!(has_answer(&q, &db, &[v.cst("zzz")]));
        assert!(!has_answer(&q, &Instance::new(), &[v.cst("zzz")]));
    }

    #[test]
    fn has_answer_respects_constants_and_repeats_in_head() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a"), v.cst("b")]));
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x), Term::Var(y), Term::Cst(v.cst("k"))],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        let (a, b, k) = (v.cst("a"), v.cst("b"), v.cst("k"));
        assert!(has_answer(&q, &db, &[a, b, k]));
        assert!(!has_answer(&q, &db, &[a, b, a])); // wrong constant
        assert!(!has_answer(&q, &db, &[b, a, k])); // wrong order
        assert!(!has_answer(&q, &db, &[a, b])); // wrong arity

        // Repeated head variable forces equal target positions.
        let q2 = Query::new(
            v.sym("q2"),
            vec![Term::Var(x), Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        assert!(!has_answer(&q2, &db, &[a, b]));
        assert!(has_answer(&q2, &db, &[a, a]));
    }

    #[test]
    fn homomorphisms_enumerates_all_models() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a"), v.cst("b")]));
        db.insert(Fact::new(p, vec![v.cst("b"), v.cst("c")]));
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        // Path of length 2: only a->b->c.
        let body = vec![
            Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(p, vec![Term::Var(y), Term::Var(z)]),
        ];
        let homs = homomorphisms(&body, &db);
        assert_eq!(homs.len(), 1);
        let h = &homs[0];
        assert_eq!(h.get(x), Some(Term::Cst(v.cst("a"))));
        assert_eq!(h.get(z), Some(Term::Cst(v.cst("c"))));
    }

    #[test]
    fn answers_with_constant_head_terms() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a")]));
        let x = v.var("X");
        let q = Query::new(
            v.sym("q"),
            vec![Term::Cst(v.cst("tag")), Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        let ans = answers(&q, &db).unwrap();
        assert!(ans.contains(&vec![v.cst("tag"), v.cst("a")]));
    }

    #[test]
    fn witness_binding_satisfies_the_body() {
        let mut v = Vocabulary::new();
        let db = school_db(&mut v);
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let (n, c, s, t) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(
                    school,
                    vec![Term::Var(s), Term::Var(t), Term::Cst(v.cst("merano"))],
                ),
            ],
        );
        let w = has_answer_witness(&q, &db, &[v.cst("john")]).expect("john is an answer");
        assert!(has_answer(&q, &db, &[v.cst("john")]));
        // Binding covers every body variable and substitutes into facts
        // present in the database.
        let get = |var: Var| {
            w.binding
                .iter()
                .find(|&&(bv, _)| bv == var)
                .map(|&(_, bc)| bc)
                .expect("bound")
        };
        assert_eq!(get(n), v.cst("john"));
        assert_eq!(get(s), v.cst("goethe"));
        // One witness step per body atom, covering both atoms.
        let mut atoms: Vec<usize> = w.ops.iter().map(|o| o.atom).collect();
        atoms.sort_unstable();
        assert_eq!(atoms, vec![0, 1]);
        // Negative targets yield no witness, mirroring has_answer.
        assert!(has_answer_witness(&q, &db, &[v.cst("luca")]).is_none());
        assert!(has_answer_witness(&q, &db, &[v.cst("john"), v.cst("x")]).is_none());
    }

    #[test]
    fn cartesian_product_counts() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let mut db = Instance::new();
        for name in ["a", "b", "c"] {
            db.insert(Fact::new(p, vec![v.cst(name)]));
        }
        for name in ["x", "y"] {
            db.insert(Fact::new(r, vec![v.cst(name)]));
        }
        let (xv, yv) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(xv), Term::Var(yv)],
            vec![
                Atom::new(p, vec![Term::Var(xv)]),
                Atom::new(r, vec![Term::Var(yv)]),
            ],
        );
        assert_eq!(answers(&q, &db).unwrap().len(), 6);
    }
}
