//! Conjunctive-query evaluation by backtracking join.
//!
//! Evaluation searches for assignments α of the query's variables to
//! constants of the instance such that αB ⊆ D. The search orders body atoms
//! dynamically: at every step it picks the atom with the fewest candidate
//! tuples under the current partial assignment, enumerating candidates
//! through the per-column hash indexes of [`Relation`](crate::Relation).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::atom::Atom;
use crate::instance::Instance;
use crate::query::Query;
use crate::subst::Substitution;
use crate::term::{Cst, Term, Var};

/// One answer tuple: the image of the head terms under a satisfying
/// assignment.
pub type Answer = Vec<Cst>;

/// The answer set of a query over an instance, ordered for deterministic
/// iteration.
pub type AnswerSet = BTreeSet<Answer>;

/// Errors raised by query evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// The query has a head variable that does not occur in the body, so
    /// its answer set would be infinite (see the paper's discussion of
    /// generalized conjunctive queries in Section 3).
    UnsafeQuery(Var),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnsafeQuery(v) => {
                write!(f, "unsafe query: head variable #{} not in body", v.index())
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Partial assignment during search.
type Bindings = HashMap<Var, Cst>;

/// Tries to extend `bind` so that the atom matches `tuple`. On success
/// returns the list of variables newly bound (the trail); on failure returns
/// `None` and leaves `bind` exactly as it was.
fn match_atom(atom: &Atom, tuple: &[Cst], bind: &mut Bindings) -> Option<Vec<Var>> {
    let mut trail = Vec::new();
    for (&t, &c) in atom.args.iter().zip(tuple) {
        let ok = match t {
            Term::Cst(tc) => tc == c,
            Term::Var(v) => match bind.get(&v) {
                Some(&bound) => bound == c,
                None => {
                    bind.insert(v, c);
                    trail.push(v);
                    true
                }
            },
        };
        if !ok {
            for v in trail {
                bind.remove(&v);
            }
            return None;
        }
    }
    Some(trail)
}

/// Estimated number of candidate tuples for `atom` under `bind`, and the
/// best access path: `Some((col, cst))` to use the column index, `None` for
/// a full scan.
fn plan_atom(atom: &Atom, db: &Instance, bind: &Bindings) -> (usize, Option<(usize, Cst)>) {
    let Some(rel) = db.relation(atom.pred) else {
        return (0, None);
    };
    let mut best = (rel.len(), None);
    for (col, &t) in atom.args.iter().enumerate() {
        let value = match t {
            Term::Cst(c) => Some(c),
            Term::Var(v) => bind.get(&v).copied(),
        };
        if let Some(c) = value {
            let n = rel.matches(col, c).map_or(0, <[u32]>::len);
            if n < best.0 {
                best = (n, Some((col, c)));
            }
        }
    }
    best
}

/// Depth-first search over the remaining atoms. `visit` returns `true` to
/// continue enumerating and `false` to stop early. Returns `false` iff the
/// search was stopped early.
fn search(
    remaining: &mut Vec<&Atom>,
    db: &Instance,
    bind: &mut Bindings,
    visit: &mut dyn FnMut(&Bindings) -> bool,
) -> bool {
    if remaining.is_empty() {
        return visit(bind);
    }
    // Pick the most constrained atom (fewest candidates).
    let mut best_i = 0;
    let mut best = (usize::MAX, None);
    for (i, atom) in remaining.iter().enumerate() {
        let plan = plan_atom(atom, db, bind);
        if plan.0 < best.0 {
            best_i = i;
            best = plan;
            if best.0 == 0 {
                return true; // dead branch, nothing to enumerate
            }
        }
    }
    let atom = remaining.swap_remove(best_i);
    let rel = db.relation(atom.pred).expect("plan found candidates");
    let mut keep_going = true;
    let mut try_tuple = |tuple: &[Cst], remaining: &mut Vec<&Atom>, bind: &mut Bindings| -> bool {
        if let Some(trail) = match_atom(atom, tuple, bind) {
            let cont = search(remaining, db, bind, visit);
            for v in trail {
                bind.remove(&v);
            }
            cont
        } else {
            true
        }
    };
    match best.1 {
        Some((col, c)) => {
            // The index vector is owned by the relation, which we never
            // mutate during search, so iterating positions is safe.
            let positions = rel.matches(col, c).unwrap_or(&[]);
            for &pos in positions {
                if !try_tuple(rel.tuple(pos), remaining, bind) {
                    keep_going = false;
                    break;
                }
            }
        }
        None => {
            for tuple in rel.iter() {
                if !try_tuple(tuple, remaining, bind) {
                    keep_going = false;
                    break;
                }
            }
        }
    }
    // Restore `remaining` for the caller (swap_remove order is irrelevant:
    // the set of remaining atoms is what matters).
    remaining.push(atom);
    keep_going
}

/// Enumerates satisfying assignments of `body` over `db` extending `seed`,
/// calling `visit` for each; `visit` returns `false` to stop. Returns
/// `false` iff stopped early.
fn for_each_model(
    body: &[Atom],
    db: &Instance,
    seed: Bindings,
    visit: &mut dyn FnMut(&Bindings) -> bool,
) -> bool {
    let mut remaining: Vec<&Atom> = body.iter().collect();
    let mut bind = seed;
    search(&mut remaining, db, &mut bind, visit)
}

/// Evaluates a query over an instance: the set of answers
/// `{αū | αB ⊆ D}`.
///
/// Returns [`EvalError::UnsafeQuery`] if a head variable does not occur in
/// the body (the answer set would be infinite).
pub fn answers(q: &Query, db: &Instance) -> Result<AnswerSet, EvalError> {
    let body_vars = q.body_vars();
    if let Some(v) = q.head_vars().into_iter().find(|v| !body_vars.contains(v)) {
        return Err(EvalError::UnsafeQuery(v));
    }
    let mut out = AnswerSet::new();
    for_each_model(&q.body, db, Bindings::new(), &mut |bind| {
        let tuple = q
            .head
            .iter()
            .map(|&t| match t {
                Term::Cst(c) => c,
                Term::Var(v) => bind[&v],
            })
            .collect();
        out.insert(tuple);
        true
    });
    Ok(out)
}

/// Decides whether `target` is an answer of `q` over `db`, i.e. whether
/// there is an assignment α with αB ⊆ D and αū = target.
///
/// Unlike [`answers`], this works for **generalized** (unsafe) queries: head
/// variables missing from the body are simply bound by the target tuple.
/// Returns `false` if the arities of `target` and the head differ.
pub fn has_answer(q: &Query, db: &Instance, target: &[Cst]) -> bool {
    if q.head.len() != target.len() {
        return false;
    }
    // Seed the assignment from the head/target correspondence.
    let mut seed = Bindings::new();
    for (&t, &c) in q.head.iter().zip(target) {
        match t {
            Term::Cst(tc) => {
                if tc != c {
                    return false;
                }
            }
            Term::Var(v) => match seed.get(&v) {
                Some(&bound) => {
                    if bound != c {
                        return false;
                    }
                }
                None => {
                    seed.insert(v, c);
                }
            },
        }
    }
    let mut found = false;
    for_each_model(&q.body, db, seed, &mut |_| {
        found = true;
        false // stop at the first witness
    });
    found
}

/// Enumerates all homomorphisms from `body` into `db`, as ground
/// substitutions over the variables of `body`.
///
/// Mostly useful for tests and for the Datalog engine; prefer [`answers`]
/// when only head images are needed.
pub fn homomorphisms(body: &[Atom], db: &Instance) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_model(body, db, Bindings::new(), &mut |bind| {
        out.push(Substitution::from_pairs(
            bind.iter().map(|(&v, &c)| (v, Term::Cst(c))),
        ));
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::Vocabulary;

    /// The running-example database of the paper (Example 1).
    fn school_db(v: &mut Vocabulary) -> Instance {
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let learns = v.pred("learns", 2);
        let mut db = Instance::new();
        let f = |v: &mut Vocabulary, p, args: &[&str]| {
            Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
        };
        db.insert(f(v, school, &["goethe", "primary", "merano"]));
        db.insert(f(v, school, &["dante", "middle", "bolzano"]));
        db.insert(f(v, pupil, &["john", "c1", "goethe"]));
        db.insert(f(v, pupil, &["mary", "c1", "goethe"]));
        db.insert(f(v, pupil, &["luca", "c2", "dante"]));
        db.insert(f(v, learns, &["john", "english"]));
        db.insert(f(v, learns, &["luca", "german"]));
        db
    }

    #[test]
    fn join_two_atoms() {
        let mut v = Vocabulary::new();
        let db = school_db(&mut v);
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let (n, c, s, t) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"));
        // Pupils of schools in merano.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(
                    school,
                    vec![Term::Var(s), Term::Var(t), Term::Cst(v.cst("merano"))],
                ),
            ],
        );
        let ans = answers(&q, &db).unwrap();
        let names: Vec<_> = ans.iter().map(|a| a[0]).collect();
        assert_eq!(names, vec![v.cst("john"), v.cst("mary")]);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a"), v.cst("a")]));
        db.insert(Fact::new(p, vec![v.cst("a"), v.cst("b")]));
        let x = v.var("X");
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(x)])],
        );
        let ans = answers(&q, &db).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![v.cst("a")]));
    }

    #[test]
    fn empty_body_boolean_query_is_true() {
        let mut v = Vocabulary::new();
        let q = Query::boolean(v.sym("q"), vec![]);
        let db = Instance::new();
        let ans = answers(&q, &db).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Vec::new()));
        assert!(has_answer(&q, &db, &[]));
    }

    #[test]
    fn missing_relation_yields_no_answers() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let x = v.var("X");
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        let ans = answers(&q, &Instance::new()).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn unsafe_query_is_rejected_by_answers() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(y)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        assert_eq!(
            answers(&q, &Instance::new()),
            Err(EvalError::UnsafeQuery(y))
        );
    }

    #[test]
    fn has_answer_handles_unsafe_queries() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a")]));
        // q(Y) ← p(X): any target works as long as the body is satisfiable.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(y)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        assert!(has_answer(&q, &db, &[v.cst("zzz")]));
        assert!(!has_answer(&q, &Instance::new(), &[v.cst("zzz")]));
    }

    #[test]
    fn has_answer_respects_constants_and_repeats_in_head() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a"), v.cst("b")]));
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x), Term::Var(y), Term::Cst(v.cst("k"))],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        let (a, b, k) = (v.cst("a"), v.cst("b"), v.cst("k"));
        assert!(has_answer(&q, &db, &[a, b, k]));
        assert!(!has_answer(&q, &db, &[a, b, a])); // wrong constant
        assert!(!has_answer(&q, &db, &[b, a, k])); // wrong order
        assert!(!has_answer(&q, &db, &[a, b])); // wrong arity

        // Repeated head variable forces equal target positions.
        let q2 = Query::new(
            v.sym("q2"),
            vec![Term::Var(x), Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        assert!(!has_answer(&q2, &db, &[a, b]));
        assert!(has_answer(&q2, &db, &[a, a]));
    }

    #[test]
    fn homomorphisms_enumerates_all_models() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a"), v.cst("b")]));
        db.insert(Fact::new(p, vec![v.cst("b"), v.cst("c")]));
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        // Path of length 2: only a->b->c.
        let body = vec![
            Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(p, vec![Term::Var(y), Term::Var(z)]),
        ];
        let homs = homomorphisms(&body, &db);
        assert_eq!(homs.len(), 1);
        let h = &homs[0];
        assert_eq!(h.get(x), Some(Term::Cst(v.cst("a"))));
        assert_eq!(h.get(z), Some(Term::Cst(v.cst("c"))));
    }

    #[test]
    fn answers_with_constant_head_terms() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a")]));
        let x = v.var("X");
        let q = Query::new(
            v.sym("q"),
            vec![Term::Cst(v.cst("tag")), Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        let ans = answers(&q, &db).unwrap();
        assert!(ans.contains(&vec![v.cst("tag"), v.cst("a")]));
    }

    #[test]
    fn cartesian_product_counts() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let mut db = Instance::new();
        for name in ["a", "b", "c"] {
            db.insert(Fact::new(p, vec![v.cst(name)]));
        }
        for name in ["x", "y"] {
            db.insert(Fact::new(r, vec![v.cst(name)]));
        }
        let (xv, yv) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(xv), Term::Var(yv)],
            vec![
                Atom::new(p, vec![Term::Var(xv)]),
                Atom::new(r, vec![Term::Var(yv)]),
            ],
        );
        assert_eq!(answers(&q, &db).unwrap().len(), 6);
    }
}
