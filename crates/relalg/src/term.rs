//! Terms: variables and constants.

use crate::vocab::Symbol;

/// A variable, interned by a [`crate::Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The raw variable index (stable within one [`crate::Vocabulary`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A constant.
///
/// Besides ordinary data constants, the paper's machinery needs *frozen
/// variables*: the freezing substitution θ maps every variable `X` to a
/// distinguished constant `θX` that behaves like any other constant during
/// evaluation but can be *unfrozen* back (θ⁻¹). Representing frozen
/// variables as their own constructor makes θ total and invertible and rules
/// out collisions with data constants by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cst {
    /// An ordinary data constant (an interned string).
    Data(Symbol),
    /// The frozen version `θX` of the variable `X`.
    Frozen(Var),
}

impl Cst {
    /// `true` iff this is a frozen variable.
    pub fn is_frozen(self) -> bool {
        matches!(self, Cst::Frozen(_))
    }

    /// The constant packed into 64 bits (tag in the high half, interner
    /// index in the low) — the batch executor's hash-key form. Distinct
    /// constants of one vocabulary pack to distinct bits.
    pub(crate) fn bits(self) -> u64 {
        match self {
            Cst::Data(s) => u64::from(s.0),
            Cst::Frozen(v) => (1 << 32) | u64::from(v.0),
        }
    }
}

/// A term: either a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Cst(Cst),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Cst(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_cst(self) -> Option<Cst> {
        match self {
            Term::Cst(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// `true` iff this term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// `true` iff this term is a constant.
    pub fn is_cst(self) -> bool {
        matches!(self, Term::Cst(_))
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Cst> for Term {
    fn from(c: Cst) -> Self {
        Term::Cst(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;

    #[test]
    fn term_accessors() {
        let mut v = Vocabulary::new();
        let x = v.var("X");
        let c = v.cst("a");
        let tv = Term::Var(x);
        let tc = Term::Cst(c);
        assert_eq!(tv.as_var(), Some(x));
        assert_eq!(tv.as_cst(), None);
        assert_eq!(tc.as_cst(), Some(c));
        assert_eq!(tc.as_var(), None);
        assert!(tv.is_var() && !tv.is_cst());
        assert!(tc.is_cst() && !tc.is_var());
    }

    #[test]
    fn frozen_constants_differ_from_data_constants() {
        let mut v = Vocabulary::new();
        let x = v.var("X");
        let frozen = Cst::Frozen(x);
        let data = v.cst("X");
        assert_ne!(Term::Cst(frozen), Term::Cst(data));
        assert!(frozen.is_frozen());
        assert!(!data.is_frozen());
    }

    #[test]
    fn from_impls() {
        let mut v = Vocabulary::new();
        let x = v.var("X");
        let c = v.cst("a");
        assert_eq!(Term::from(x), Term::Var(x));
        assert_eq!(Term::from(c), Term::Cst(c));
    }
}
