//! Containment and equivalence of conjunctive queries (Chandra–Merlin).
//!
//! `Q ⊑ Q'` holds iff `θū ∈ Q'(D_Q)` (Proposition 6 of the paper): freeze
//! `Q` into its canonical database and look for a homomorphism from `Q'`
//! that hits the frozen head tuple. The homomorphism search reuses the
//! evaluation engine of [`crate::eval`].

use crate::eval::has_answer;
use crate::query::Query;
use crate::subst::{canonical_database, freeze_term};
use crate::term::Cst;

/// Decides `q ⊑ q2`: every answer of `q` is an answer of `q2` over every
/// instance. Queries of different head arity are incomparable (`false`).
///
/// Works for generalized (unsafe) queries as well; this is needed by the
/// `G_C` fixed-point machinery of the paper's Section 3.
pub fn is_contained_in(q: &Query, q2: &Query) -> bool {
    if q.head.len() != q2.head.len() {
        return false;
    }
    let frozen_head: Vec<Cst> = q.head.iter().map(|&t| freeze_term(t)).collect();
    let db = canonical_database(q);
    has_answer(q2, &db, &frozen_head)
}

/// Decides `q ≡ q2` (mutual containment).
pub fn are_equivalent(q: &Query, q2: &Query) -> bool {
    is_contained_in(q, q2) && is_contained_in(q2, q)
}

/// Decides `q ⊏ q2`: contained but not equivalent.
pub fn is_strictly_contained_in(q: &Query, q2: &Query) -> bool {
    is_contained_in(q, q2) && !is_contained_in(q2, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;
    use crate::Vocabulary;

    /// q(X) ← p(X, Y)
    fn base(v: &mut Vocabulary) -> Query {
        let p = v.pred("p", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        )
    }

    #[test]
    fn query_is_contained_in_itself() {
        let mut v = Vocabulary::new();
        let q = base(&mut v);
        assert!(is_contained_in(&q, &q));
        assert!(are_equivalent(&q, &q));
        assert!(!is_strictly_contained_in(&q, &q));
    }

    #[test]
    fn instantiation_is_contained_in_original() {
        let mut v = Vocabulary::new();
        let q = base(&mut v);
        let p = v.pred("p", 2);
        let x = v.var("X");
        // q'(X) ← p(X, c)
        let qc = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Cst(v.cst("c"))])],
        );
        assert!(is_contained_in(&qc, &q));
        assert!(!is_contained_in(&q, &qc));
        assert!(is_strictly_contained_in(&qc, &q));
    }

    #[test]
    fn longer_chain_is_contained_in_shorter() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        // chain2(X) ← p(X,Y), p(Y,Z)
        let chain2 = Query::new(
            v.sym("c2"),
            vec![Term::Var(x)],
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(p, vec![Term::Var(y), Term::Var(z)]),
            ],
        );
        let chain1 = base(&mut v);
        assert!(is_contained_in(&chain2, &chain1));
        assert!(!is_contained_in(&chain1, &chain2));
    }

    #[test]
    fn redundant_atom_preserves_equivalence() {
        let mut v = Vocabulary::new();
        let q = base(&mut v);
        let p = v.pred("p", 2);
        let (x, u, w) = (v.var("X"), v.var("U"), v.var("W"));
        // q'(X) ← p(X, Y), p(U, W): second atom is redundant.
        let mut body = q.body.clone();
        body.push(Atom::new(p, vec![Term::Var(u), Term::Var(w)]));
        let q2 = Query::new(v.sym("q"), vec![Term::Var(x)], body);
        assert!(are_equivalent(&q, &q2));
    }

    #[test]
    fn different_arity_heads_are_incomparable() {
        let mut v = Vocabulary::new();
        let q = base(&mut v);
        let mut q2 = q.clone();
        q2.head.push(q2.head[0]);
        assert!(!is_contained_in(&q, &q2));
        assert!(!is_contained_in(&q2, &q));
    }

    #[test]
    fn cycle_vs_loop_from_theorem_17() {
        // Q_k(X0) ← round trip of length k. The paper's Theorem 17 uses
        // that A_k maps into A_{k'} iff k' divides... in particular the
        // self-loop conn(X,X) is contained in every cycle, and a cycle of
        // length 2 is not contained in a cycle of length 3 (no hom).
        let mut v = Vocabulary::new();
        let conn = v.pred("conn", 2);
        let cycle = |v: &mut Vocabulary, k: usize, tag: &str| {
            let vars: Vec<_> = (0..k).map(|i| v.var(&format!("{tag}{i}"))).collect();
            let body = (0..k)
                .map(|i| Atom::new(conn, vec![Term::Var(vars[i]), Term::Var(vars[(i + 1) % k])]))
                .collect();
            Query::new(v.sym("q"), vec![Term::Var(vars[0])], body)
        };
        let self_loop = cycle(&mut v, 1, "A");
        let c2 = cycle(&mut v, 2, "B");
        let c3 = cycle(&mut v, 3, "C");
        let c4 = cycle(&mut v, 4, "D");
        assert!(is_contained_in(&self_loop, &c2));
        assert!(is_contained_in(&self_loop, &c3));
        assert!(!is_contained_in(&c2, &self_loop));
        // c2 ⊑ c4 (wrap the 4-cycle variables around the 2-cycle).
        assert!(is_contained_in(&c2, &c4));
        // but not c2 ⊑ c3 and not c3 ⊑ c2.
        assert!(!is_contained_in(&c2, &c3));
        assert!(!is_contained_in(&c3, &c2));
    }

    #[test]
    fn unsafe_queries_compare_correctly() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        // unsafe: u(Y) ← p(X). safe: s(Y) ← p(Y).
        let unsafe_q = Query::new(
            v.sym("u"),
            vec![Term::Var(y)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        let safe_q = Query::new(
            v.sym("s"),
            vec![Term::Var(y)],
            vec![Atom::new(p, vec![Term::Var(y)])],
        );
        // Over any instance, answers(safe) ⊆ answers(unsafe) = dom × {p nonempty}.
        assert!(is_contained_in(&safe_q, &unsafe_q));
        assert!(!is_contained_in(&unsafe_q, &safe_q));
    }

    #[test]
    fn boolean_queries() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let x = v.var("X");
        let q_p = Query::boolean(v.sym("b"), vec![Atom::new(p, vec![Term::Var(x)])]);
        let q_true = Query::boolean(v.sym("t"), vec![]);
        assert!(is_contained_in(&q_p, &q_true));
        assert!(!is_contained_in(&q_true, &q_p));
    }
}
