//! String interning and vocabulary management.
//!
//! All names occurring in queries, TC statements and instances — relation
//! names, constants and variable names — are interned into small integer ids
//! by a [`Vocabulary`]. This makes terms and atoms `Copy`-cheap to compare
//! and hash, which matters in the inner loops of homomorphism search.

use std::collections::HashMap;

use crate::term::{Cst, Var};
use crate::Pred;

/// An interned string.
///
/// Symbols are only meaningful relative to the [`Vocabulary`] that created
/// them; two symbols from the same vocabulary are equal iff their spellings
/// are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw interner index (stable within one [`Vocabulary`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A placeholder symbol for internal, display-free uses (e.g. the head
    /// name of queries constructed during rule evaluation). Resolving its
    /// name through a vocabulary panics; never display it.
    pub fn placeholder() -> Symbol {
        Symbol(u32::MAX)
    }
}

/// The interner for all names used in a reasoning session.
///
/// A `Vocabulary` owns the mapping between strings and the ids used by the
/// rest of the system ([`Symbol`], [`Var`], [`Pred`]), and is the source of
/// *fresh* variables (needed when renaming TC statements apart and when
/// building fresh query extensions).
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    pub(crate) strings: Vec<String>,
    pub(crate) by_string: HashMap<String, Symbol>,
    /// Name of each variable, indexed by `Var::index()`.
    pub(crate) var_names: Vec<Symbol>,
    pub(crate) var_by_name: HashMap<Symbol, Var>,
    /// `(name, arity)` of each predicate, indexed by `Pred::index()`.
    pub(crate) preds: Vec<(Symbol, usize)>,
    pub(crate) pred_by_sig: HashMap<(Symbol, usize), Pred>,
    pub(crate) fresh_counter: u64,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string.
    pub fn sym(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.by_string.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_owned());
        self.by_string.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up an interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.by_string.get(s).copied()
    }

    /// The spelling of a symbol.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Interns a named variable. Repeated calls with the same name return
    /// the same [`Var`].
    pub fn var(&mut self, name: &str) -> Var {
        let sym = self.sym(name);
        if let Some(&v) = self.var_by_name.get(&sym) {
            return v;
        }
        let v = Var(u32::try_from(self.var_names.len()).expect("variable overflow"));
        self.var_names.push(sym);
        self.var_by_name.insert(sym, v);
        v
    }

    /// Creates a fresh variable guaranteed to be distinct from every
    /// variable created so far. `hint` is used to derive a readable name.
    pub fn fresh_var(&mut self, hint: &str) -> Var {
        loop {
            let name = format!("{hint}#{}", self.fresh_counter);
            self.fresh_counter += 1;
            let sym = self.sym(&name);
            if !self.var_by_name.contains_key(&sym) {
                let v = Var(u32::try_from(self.var_names.len()).expect("variable overflow"));
                self.var_names.push(sym);
                self.var_by_name.insert(sym, v);
                return v;
            }
        }
    }

    /// The name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        self.name(self.var_names[v.index()])
    }

    /// Number of distinct variables created so far.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Interns a data constant.
    pub fn cst(&mut self, name: &str) -> Cst {
        Cst::Data(self.sym(name))
    }

    /// Interns a predicate with the given name and arity. Predicates with
    /// the same name but different arities are distinct.
    pub fn pred(&mut self, name: &str, arity: usize) -> Pred {
        let sym = self.sym(name);
        if let Some(&p) = self.pred_by_sig.get(&(sym, arity)) {
            return p;
        }
        let p = Pred(u32::try_from(self.preds.len()).expect("predicate overflow"));
        self.preds.push((sym, arity));
        self.pred_by_sig.insert((sym, arity), p);
        p
    }

    /// Looks up a predicate without inserting.
    pub fn lookup_pred(&self, name: &str, arity: usize) -> Option<Pred> {
        let sym = self.by_string.get(name)?;
        self.pred_by_sig.get(&(*sym, arity)).copied()
    }

    /// The name of a predicate.
    pub fn pred_name(&self, p: Pred) -> &str {
        self.name(self.preds[p.index()].0)
    }

    /// The arity of a predicate.
    pub fn arity(&self, p: Pred) -> usize {
        self.preds[p.index()].1
    }

    /// Number of distinct predicates created so far.
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.sym("abc");
        let b = v.sym("abc");
        assert_eq!(a, b);
        assert_eq!(v.name(a), "abc");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut v = Vocabulary::new();
        assert_ne!(v.sym("a"), v.sym("b"));
    }

    #[test]
    fn variables_are_interned_by_name() {
        let mut v = Vocabulary::new();
        let x1 = v.var("X");
        let x2 = v.var("X");
        let y = v.var("Y");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        assert_eq!(v.var_name(x1), "X");
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut v = Vocabulary::new();
        let x = v.var("X");
        let f1 = v.fresh_var("X");
        let f2 = v.fresh_var("X");
        assert_ne!(f1, f2);
        assert_ne!(f1, x);
        assert_eq!(v.num_vars(), 3);
    }

    #[test]
    fn fresh_var_skips_taken_names() {
        let mut v = Vocabulary::new();
        // Pre-claim the name the fresh counter would produce first.
        let taken = v.var("X#0");
        let f = v.fresh_var("X");
        assert_ne!(f, taken);
        assert_eq!(v.var_name(f), "X#1");
    }

    #[test]
    fn predicates_distinguish_arity() {
        let mut v = Vocabulary::new();
        let p2 = v.pred("p", 2);
        let p3 = v.pred("p", 3);
        assert_ne!(p2, p3);
        assert_eq!(v.arity(p2), 2);
        assert_eq!(v.arity(p3), 3);
        assert_eq!(v.pred_name(p2), "p");
        assert_eq!(v.lookup_pred("p", 2), Some(p2));
        assert_eq!(v.lookup_pred("p", 4), None);
        assert_eq!(v.lookup_pred("q", 2), None);
    }

    #[test]
    fn constants_are_data_constants() {
        let mut v = Vocabulary::new();
        let c = v.cst("merano");
        match c {
            Cst::Data(sym) => assert_eq!(v.name(sym), "merano"),
            _ => panic!("expected data constant"),
        }
    }
}
