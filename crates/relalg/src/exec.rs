//! Compiled execution plans for conjunctive bodies.
//!
//! Every reasoning task in the paper — evaluation, containment
//! (Chandra–Merlin), the completeness check over the frozen canonical
//! database (Theorem 3), and the semi-naive Datalog fixpoints behind the
//! Section 5 encoding — bottoms out in the same operation: find matches of
//! a conjunctive body against an [`Instance`]. This module compiles that
//! operation **once** per body into a [`Plan`] — an ordered sequence of
//! typed ops with a fixed variable-binding order — instead of re-deriving
//! atom order and index choices at every search node, the way the seed
//! backtracking evaluator did.
//!
//! # Plan shape
//!
//! A plan holds one [`PlanOp`] per body atom, in execution order. Each op
//! enumerates candidate tuples either by scanning its relation
//! ([`Access::Scan`]) or by probing a per-column hash index with a value
//! known at that point ([`Access::Probe`]), then applies its
//! [`ColAction`]s in column order: constants are checked, already-bound
//! variables are compared against their register (this is also how
//! repeated variables within one atom are filtered), and fresh variables
//! are bound into registers. Registers are a flat `Vec` indexed by *slot*;
//! the plan's slot table maps slots back to variables. Head emission is a
//! separate [`Projection`] compiled against the same slot table.
//!
//! # Planning
//!
//! [`Plan::compile`] orders atoms greedily: at each step it picks the
//! remaining atom with the smallest estimated candidate count given the
//! variables bound so far, using the statistics of an instance when one is
//! supplied — relation cardinalities, exact index-bucket sizes for
//! constants, and cardinality ÷ distinct-values selectivities for bound
//! variables. The estimate fixes both the atom order and the access path
//! at compile time, so a plan can be cached and re-run against evolving
//! instances (the order may drift from optimal as data changes, but
//! correctness never depends on the statistics).
//!
//! # Execution modes
//!
//! [`Plan::run`] enumerates satisfying assignments and calls a visitor
//! that may stop the search (`false`), which gives the three modes the
//! callers need: enumerate-all (evaluation, homomorphism listing),
//! first-match via [`Plan::first_match`] (`has_answer`, containment), and
//! delta execution — compile the body *without* the pivot atom, declare
//! the pivot's variables `bound`, and seed each run from a delta fact
//! (semi-naive Datalog; see `magik-exec`'s `CompiledBody`).
//!
//! Runs fill an [`ExecStats`] with probe/scan/backtrack counters, both in
//! aggregate and per op, feeding the server's metrics endpoint and the
//! CLI's `explain-plan` output.

use std::collections::{BTreeSet, HashMap};

use crate::atom::{Atom, Pred};
use crate::instance::{RowRef, StoreView};
use crate::term::{Cst, Term, Var};

/// How a [`PlanOp`] enumerates candidate tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Scan every tuple of the relation.
    Scan,
    /// Probe the per-column hash index of one column with a key that is
    /// known when the op runs.
    Probe {
        /// The probed column.
        col: usize,
        /// The probe key.
        key: Key,
    },
}

/// The lookup key of an [`Access::Probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Key {
    /// A constant known at plan time.
    Const(Cst),
    /// The value of a register bound by an earlier op or by the seed.
    Slot(usize),
}

/// Per-column work applied to a candidate tuple, in column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColAction {
    /// The column must equal a plan-time constant.
    CheckConst {
        /// The checked column.
        col: usize,
        /// The required value.
        value: Cst,
    },
    /// The column must equal an already-bound register — a join on a
    /// previously bound variable, or the filter for a variable repeated
    /// within the atom (whose first occurrence is a [`ColAction::Bind`]
    /// at a smaller column).
    CheckSlot {
        /// The checked column.
        col: usize,
        /// The register holding the required value.
        slot: usize,
    },
    /// The column's value binds a fresh register.
    Bind {
        /// The bound column.
        col: usize,
        /// The register receiving the value.
        slot: usize,
    },
}

/// One step of a [`Plan`]: match one body atom and extend the current
/// partial assignment.
#[derive(Debug, Clone)]
pub struct PlanOp {
    /// Index of the atom in the source body (plans reorder atoms; explain
    /// output maps ops back to the query text through this).
    pub atom: usize,
    /// The predicate matched by this op.
    pub pred: Pred,
    /// Candidate enumeration strategy.
    pub access: Access,
    /// Checks and bindings applied to each candidate, in column order.
    pub actions: Vec<ColAction>,
    /// The planner's candidate estimate when the op was placed (explain
    /// output only; execution never consults it).
    pub est: usize,
}

/// A compiled evaluation plan for one conjunctive body.
///
/// Compile with [`Plan::compile`], execute with [`Plan::run`] /
/// [`Plan::first_match`]. A plan is immutable and self-contained: it can
/// be cached, shared across threads, and re-run against any instance.
#[derive(Debug, Clone)]
pub struct Plan {
    ops: Vec<PlanOp>,
    /// Slot table: `slots[s]` is the variable held by register `s`. The
    /// first `seed_slots` entries are the declared-bound variables.
    slots: Vec<Var>,
    seed_slots: usize,
}

/// Aggregate and per-op execution counters filled by [`Plan::run`].
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Index probes issued.
    pub probes: u64,
    /// Candidate tuples examined.
    pub scanned: u64,
    /// Candidate tuples rejected by a check (forcing a backtrack).
    pub backtracks: u64,
    /// Complete rows produced (visitor invocations).
    pub rows: u64,
    /// Batch-plan executions (see [`crate::batch::BatchPlan::run`]).
    pub batches: u64,
    /// Rows materialized into intermediate batches by batch ops.
    pub batch_rows: u64,
    /// Batch join ops executed with the nested-loop (index probe) operator.
    pub join_nested: u64,
    /// Batch join ops executed with the hash-join operator.
    pub join_hash: u64,
    /// Batch join ops executed with the merge-join operator.
    pub join_merge: u64,
    /// Per-op counters, parallel to [`Plan::ops`].
    pub per_op: Vec<OpCounters>,
}

/// Counters for one [`PlanOp`] within an [`ExecStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCounters {
    /// Times the op was entered.
    pub entered: u64,
    /// Index probes issued by the op.
    pub probes: u64,
    /// Candidate tuples the op examined.
    pub scanned: u64,
    /// Candidates that passed every check and advanced the search.
    pub matched: u64,
}

impl ExecStats {
    pub(crate) fn ensure_ops(&mut self, n: usize) {
        if self.per_op.len() < n {
            self.per_op.resize(n, OpCounters::default());
        }
    }

    /// Adds the aggregate counters of `other` into `self` (per-op
    /// counters are merged positionally).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.probes += other.probes;
        self.scanned += other.scanned;
        self.backtracks += other.backtracks;
        self.rows += other.rows;
        self.batches += other.batches;
        self.batch_rows += other.batch_rows;
        self.join_nested += other.join_nested;
        self.join_hash += other.join_hash;
        self.join_merge += other.join_merge;
        self.ensure_ops(other.per_op.len());
        for (mine, theirs) in self.per_op.iter_mut().zip(other.per_op.iter()) {
            mine.entered += theirs.entered;
            mine.probes += theirs.probes;
            mine.scanned += theirs.scanned;
            mine.matched += theirs.matched;
        }
    }
}

/// A complete satisfying assignment, viewed through its plan's slot
/// table. Handed to the visitor of [`Plan::run`]; every slot is bound.
#[derive(Debug, Clone, Copy)]
pub struct Row<'a> {
    slots: &'a [Var],
    regs: &'a [Option<Cst>],
}

impl Row<'_> {
    /// The value bound to `var`, or `None` if the plan has no slot for it.
    pub fn get(&self, var: Var) -> Option<Cst> {
        self.slots
            .iter()
            .position(|&v| v == var)
            .and_then(|s| self.regs[s])
    }

    /// The value in register `slot` (every slot of a complete row is
    /// bound).
    pub fn slot(&self, slot: usize) -> Cst {
        self.regs[slot].expect("complete rows bind every slot")
    }

    /// Iterates over `(variable, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Cst)> + '_ {
        self.slots
            .iter()
            .zip(self.regs.iter())
            .filter_map(|(&v, &c)| c.map(|c| (v, c)))
    }
}

/// Cost estimate for placing `atom` next, given the variables that will
/// be bound at that point. Returns the estimated candidate count and the
/// chosen access path.
fn estimate(
    atom: &Atom,
    slot_of: &HashMap<Var, usize>,
    stats: Option<&dyn StoreView>,
) -> (usize, Access) {
    // Without statistics, fall back to a shape heuristic: constants are
    // the most selective, bound-variable probes next, scans last; the
    // magnitudes only matter relative to each other.
    let Some(db) = stats else {
        let mut cost = 1_000 + atom.args.len();
        let mut access = Access::Scan;
        for (col, &t) in atom.args.iter().enumerate() {
            let candidate = match t {
                Term::Cst(c) => Some((1, Key::Const(c))),
                Term::Var(v) => slot_of.get(&v).map(|&s| (10, Key::Slot(s))),
            };
            if let Some((est, key)) = candidate {
                if est < cost {
                    cost = est;
                    access = Access::Probe { col, key };
                }
            }
        }
        return (cost, access);
    };
    let Some(rel) = db.relation(atom.pred) else {
        // Empty relation: the cheapest possible op — it terminates the
        // whole branch immediately.
        return (0, Access::Scan);
    };
    let mut cost = rel.len();
    let mut access = Access::Scan;
    for (col, &t) in atom.args.iter().enumerate() {
        let candidate = match t {
            // Constants have exact bucket sizes at plan time.
            Term::Cst(c) => Some((rel.matches(col, c).map_or(0, <[u32]>::len), Key::Const(c))),
            // Bound variables get the uniform selectivity estimate
            // |R| / distinct(col).
            Term::Var(v) => slot_of.get(&v).map(|&s| {
                let distinct = rel.distinct_in_col(col).max(1);
                (rel.len().div_ceil(distinct), Key::Slot(s))
            }),
        };
        if let Some((est, key)) = candidate {
            if est < cost {
                cost = est;
                access = Access::Probe { col, key };
            }
        }
    }
    (cost, access)
}

impl Plan {
    /// Compiles a plan for `body`.
    ///
    /// `bound` declares variables that will already be bound when the plan
    /// runs (the seed): head variables for `has_answer`-style targeted
    /// matching, or a pivot atom's variables for delta execution. Every
    /// bound variable gets a seed slot even when the body never mentions
    /// it, so projections over seed variables always compile. `stats`
    /// supplies the instance whose cardinalities and index selectivities
    /// drive atom ordering; without it a shape heuristic is used. The
    /// statistics influence only performance, never results.
    pub fn compile(body: &[Atom], bound: &BTreeSet<Var>, stats: Option<&dyn StoreView>) -> Plan {
        let mut slots: Vec<Var> = bound.iter().copied().collect();
        let seed_slots = slots.len();
        let mut slot_of: HashMap<Var, usize> =
            slots.iter().enumerate().map(|(s, &v)| (v, s)).collect();
        let mut remaining: Vec<usize> = (0..body.len()).collect();
        let mut ops = Vec::with_capacity(body.len());
        while !remaining.is_empty() {
            // Greedy: place the cheapest remaining atom next.
            let mut best = (usize::MAX, Access::Scan, 0);
            for (pos, &ai) in remaining.iter().enumerate() {
                let (cost, access) = estimate(&body[ai], &slot_of, stats);
                if cost < best.0 {
                    best = (cost, access, pos);
                }
            }
            let (est, access, pos) = best;
            let ai = remaining.remove(pos);
            let atom = &body[ai];
            let probe_col = match access {
                Access::Probe { col, .. } => Some(col),
                Access::Scan => None,
            };
            let mut actions = Vec::with_capacity(atom.args.len());
            for (col, &t) in atom.args.iter().enumerate() {
                match t {
                    Term::Cst(value) => {
                        // The probe already guarantees the probed column.
                        if probe_col != Some(col) {
                            actions.push(ColAction::CheckConst { col, value });
                        }
                    }
                    Term::Var(v) => match slot_of.get(&v) {
                        Some(&slot) => {
                            let redundant = probe_col == Some(col)
                                && matches!(access, Access::Probe { key: Key::Slot(k), .. } if k == slot);
                            if !redundant {
                                actions.push(ColAction::CheckSlot { col, slot });
                            }
                        }
                        None => {
                            let slot = slots.len();
                            slots.push(v);
                            slot_of.insert(v, slot);
                            actions.push(ColAction::Bind { col, slot });
                        }
                    },
                }
            }
            ops.push(PlanOp {
                atom: ai,
                pred: atom.pred,
                access,
                actions,
                est,
            });
        }
        Plan {
            ops,
            slots,
            seed_slots,
        }
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// The slot table: `slots()[s]` is the variable register `s` holds.
    pub fn slots(&self) -> &[Var] {
        &self.slots
    }

    /// How many leading slots are seed (declared-bound) slots.
    pub fn seed_slots(&self) -> usize {
        self.seed_slots
    }

    /// The register holding `var`, if the plan binds it.
    pub fn slot_of(&self, var: Var) -> Option<usize> {
        self.slots.iter().position(|&v| v == var)
    }

    /// Enumerates satisfying assignments of the body over `db` extending
    /// `seed`, calling `visit` for each complete row; `visit` returns
    /// `false` to stop the search. Returns `false` iff stopped early.
    ///
    /// `db` is any [`StoreView`] — a live [`crate::Instance`] or a frozen
    /// [`crate::Snapshot`]; plans are store-agnostic.
    ///
    /// Every variable declared `bound` at compile time must be covered by
    /// `seed`; seed entries for variables without a slot are ignored.
    pub fn run<S: StoreView + ?Sized>(
        &self,
        db: &S,
        seed: &[(Var, Cst)],
        stats: &mut ExecStats,
        visit: &mut dyn FnMut(Row<'_>) -> bool,
    ) -> bool {
        stats.ensure_ops(self.ops.len());
        let mut regs: Vec<Option<Cst>> = vec![None; self.slots.len()];
        for &(v, c) in seed {
            if let Some(s) = self.slot_of(v) {
                regs[s] = Some(c);
            }
        }
        debug_assert!(
            regs[..self.seed_slots].iter().all(Option::is_some),
            "every declared-bound variable must be seeded"
        );
        self.step(0, db, &mut regs, stats, visit)
    }

    /// `true` iff the body has at least one satisfying assignment over
    /// `db` extending `seed` (first-match mode: stops at the first row).
    pub fn first_match<S: StoreView + ?Sized>(
        &self,
        db: &S,
        seed: &[(Var, Cst)],
        stats: &mut ExecStats,
    ) -> bool {
        let mut found = false;
        self.run(db, seed, stats, &mut |_| {
            found = true;
            false
        });
        found
    }

    fn step<S: StoreView + ?Sized>(
        &self,
        i: usize,
        db: &S,
        regs: &mut Vec<Option<Cst>>,
        stats: &mut ExecStats,
        visit: &mut dyn FnMut(Row<'_>) -> bool,
    ) -> bool {
        let Some(op) = self.ops.get(i) else {
            stats.rows += 1;
            return visit(Row {
                slots: &self.slots,
                regs,
            });
        };
        stats.per_op[i].entered += 1;
        let Some(rel) = db.relation(op.pred) else {
            return true;
        };
        let mut keep_going = true;
        match op.access {
            Access::Probe { col, key } => {
                stats.probes += 1;
                stats.per_op[i].probes += 1;
                let value = match key {
                    Key::Const(c) => c,
                    Key::Slot(s) => regs[s].expect("probe slots are bound before the op runs"),
                };
                for &pos in rel.matches(col, value).unwrap_or(&[]) {
                    if !self.try_row(i, op, rel.row(pos), db, regs, stats, visit) {
                        keep_going = false;
                        break;
                    }
                }
            }
            Access::Scan => {
                for row in rel.iter() {
                    if !self.try_row(i, op, row, db, regs, stats, visit) {
                        keep_going = false;
                        break;
                    }
                }
            }
        }
        keep_going
    }

    #[allow(clippy::too_many_arguments)]
    fn try_row<S: StoreView + ?Sized>(
        &self,
        i: usize,
        op: &PlanOp,
        row: RowRef<'_>,
        db: &S,
        regs: &mut Vec<Option<Cst>>,
        stats: &mut ExecStats,
        visit: &mut dyn FnMut(Row<'_>) -> bool,
    ) -> bool {
        stats.scanned += 1;
        stats.per_op[i].scanned += 1;
        let mut ok = true;
        for &action in &op.actions {
            match action {
                ColAction::CheckConst { col, value } => {
                    if row.get(col) != value {
                        ok = false;
                        break;
                    }
                }
                ColAction::CheckSlot { col, slot } => {
                    if regs[slot] != Some(row.get(col)) {
                        ok = false;
                        break;
                    }
                }
                ColAction::Bind { col, slot } => regs[slot] = Some(row.get(col)),
            }
        }
        let keep_going = if ok {
            stats.per_op[i].matched += 1;
            self.step(i + 1, db, regs, stats, visit)
        } else {
            stats.backtracks += 1;
            true
        };
        // Every Bind slot of this op was unbound at op entry (the planner
        // allocates a fresh slot per first occurrence), so resetting them
        // restores the entry state even when a later check aborted the
        // action list early.
        for &action in &op.actions {
            if let ColAction::Bind { slot, .. } = action {
                regs[slot] = None;
            }
        }
        keep_going
    }
}

/// A tuple template over a plan's registers: the compiled form of a head
/// (or any atom argument list) whose variables the plan binds.
#[derive(Debug, Clone)]
pub struct Projection {
    items: Vec<ProjItem>,
}

#[derive(Debug, Clone, Copy)]
enum ProjItem {
    Const(Cst),
    Slot(usize),
}

impl Projection {
    /// Compiles `terms` against the slot table of `plan`. Fails with the
    /// offending variable if one has no slot (an unsafe head).
    pub fn compile(terms: &[Term], plan: &Plan) -> Result<Projection, Var> {
        let items = terms
            .iter()
            .map(|&t| match t {
                Term::Cst(c) => Ok(ProjItem::Const(c)),
                Term::Var(v) => plan.slot_of(v).map(ProjItem::Slot).ok_or(v),
            })
            .collect::<Result<_, _>>()?;
        Ok(Projection { items })
    }

    /// The number of projected terms.
    pub fn arity(&self) -> usize {
        self.items.len()
    }

    /// Materializes the projected tuple from a complete row.
    pub fn emit(&self, row: Row<'_>) -> Vec<Cst> {
        self.items
            .iter()
            .map(|&item| match item {
                ProjItem::Const(c) => c,
                ProjItem::Slot(s) => row.slot(s),
            })
            .collect()
    }

    /// Materializes the projected tuple with slot values supplied by
    /// `get` — the batch executor's emission path, where a "row" is one
    /// index into a [`crate::batch::Batch`]'s columns.
    pub fn emit_with(&self, get: &mut dyn FnMut(usize) -> Cst) -> Vec<Cst> {
        self.items
            .iter()
            .map(|&item| match item {
                ProjItem::Const(c) => c,
                ProjItem::Slot(s) => get(s),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::instance::Instance;
    use crate::Vocabulary;

    fn fact(v: &mut Vocabulary, p: Pred, args: &[&str]) -> Fact {
        Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
    }

    fn collect_rows(plan: &Plan, db: &Instance) -> Vec<Vec<(Var, Cst)>> {
        let mut out = Vec::new();
        let mut stats = ExecStats::default();
        plan.run(db, &[], &mut stats, &mut |row| {
            out.push(row.iter().collect());
            true
        });
        out
    }

    #[test]
    fn constant_only_atom_compiles_to_probe() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "b"]));
        db.insert(fact(&mut v, p, &["a", "c"]));
        let body = vec![Atom::new(
            p,
            vec![Term::Cst(v.cst("a")), Term::Cst(v.cst("b"))],
        )];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        assert!(matches!(
            plan.ops()[0].access,
            Access::Probe {
                key: Key::Const(_),
                ..
            }
        ));
        assert!(plan.slots().is_empty());
        assert_eq!(collect_rows(&plan, &db).len(), 1);
        // The other constant is checked, not probed twice.
        let mut stats = ExecStats::default();
        assert!(plan.first_match(&db, &[], &mut stats));
        assert_eq!(stats.probes, 1);
    }

    #[test]
    fn repeated_variable_filters_within_one_atom() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "a"]));
        db.insert(fact(&mut v, p, &["a", "b"]));
        let x = v.var("X");
        let body = vec![Atom::new(p, vec![Term::Var(x), Term::Var(x)])];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        // One Bind then one CheckSlot (the FilterRepeatedVar op).
        assert!(plan.ops()[0]
            .actions
            .iter()
            .any(|a| matches!(a, ColAction::CheckSlot { .. })));
        let rows = collect_rows(&plan, &db);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], vec![(x, v.cst("a"))]);
    }

    #[test]
    fn cartesian_product_enumerates_all_pairs() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let mut db = Instance::new();
        for n in ["a", "b", "c"] {
            db.insert(fact(&mut v, p, &[n]));
        }
        for n in ["x", "y"] {
            db.insert(fact(&mut v, r, &[n]));
        }
        let (xv, yv) = (v.var("X"), v.var("Y"));
        let body = vec![
            Atom::new(p, vec![Term::Var(xv)]),
            Atom::new(r, vec![Term::Var(yv)]),
        ];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        // No shared variables: both ops are scans.
        assert!(plan.ops().iter().all(|op| op.access == Access::Scan));
        assert_eq!(collect_rows(&plan, &db).len(), 6);
    }

    #[test]
    fn empty_relation_is_planned_first_and_kills_the_branch() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let missing = v.pred("missing", 1);
        let mut db = Instance::new();
        for i in 0..50 {
            db.insert(fact(&mut v, p, &[&format!("c{i}")]));
        }
        let x = v.var("X");
        let body = vec![
            Atom::new(p, vec![Term::Var(x)]),
            Atom::new(missing, vec![Term::Var(x)]),
        ];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        // The empty relation goes first, so nothing is ever scanned.
        assert_eq!(plan.ops()[0].pred, missing);
        let mut stats = ExecStats::default();
        assert!(!plan.first_match(&db, &[], &mut stats));
        assert_eq!(stats.scanned, 0);
    }

    #[test]
    fn empty_body_visits_exactly_once() {
        let v = Vocabulary::new();
        let plan = Plan::compile(&[], &BTreeSet::new(), None);
        let db = Instance::new();
        let mut stats = ExecStats::default();
        let mut visits = 0;
        plan.run(&db, &[], &mut stats, &mut |_| {
            visits += 1;
            true
        });
        assert_eq!(visits, 1);
        assert_eq!(stats.rows, 1);
        drop(v);
    }

    #[test]
    fn seed_variables_reach_projections_even_when_unused_in_body() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a"]));
        let (x, y) = (v.var("X"), v.var("Y"));
        // Body mentions only X; Y is a seed (pivot) variable.
        let body = vec![Atom::new(p, vec![Term::Var(x)])];
        let bound = BTreeSet::from([y]);
        let plan = Plan::compile(&body, &bound, Some(&db));
        let proj = Projection::compile(&[Term::Var(y), Term::Var(x)], &plan).unwrap();
        let b = v.cst("b");
        let mut stats = ExecStats::default();
        let mut tuples = Vec::new();
        plan.run(&db, &[(y, b)], &mut stats, &mut |row| {
            tuples.push(proj.emit(row));
            true
        });
        assert_eq!(tuples, vec![vec![b, v.cst("a")]]);
    }

    #[test]
    fn bound_variable_probe_uses_the_index() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let mut db = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")] {
            db.insert(fact(&mut v, e, &[a, b]));
        }
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        // The second op joins on the shared variable via an index probe.
        assert!(matches!(
            plan.ops()[1].access,
            Access::Probe {
                key: Key::Slot(_),
                ..
            }
        ));
        assert_eq!(collect_rows(&plan, &db).len(), 2); // a->b->c, b->c->d
    }

    #[test]
    fn plans_run_identically_on_instance_and_snapshot() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let mut db = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c"), ("c", "a")] {
            db.insert(fact(&mut v, e, &[a, b]));
        }
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let snap = db.snapshot();
        // Compile against either store (the snapshot carries the stats).
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&snap));
        let mut on_db = Vec::new();
        plan.run(&db, &[], &mut ExecStats::default(), &mut |row| {
            on_db.push(row.iter().collect::<Vec<_>>());
            true
        });
        let mut on_snap = Vec::new();
        plan.run(&snap, &[], &mut ExecStats::default(), &mut |row| {
            on_snap.push(row.iter().collect::<Vec<_>>());
            true
        });
        assert_eq!(on_db, on_snap);
        // Writes after the snapshot are seen by the instance run only.
        db.insert(fact(&mut v, e, &["c", "d"]));
        let count = |s: &mut Vec<()>, _row: Row<'_>| {
            s.push(());
            true
        };
        let mut later = Vec::new();
        plan.run(&db, &[], &mut ExecStats::default(), &mut |r| {
            count(&mut later, r)
        });
        let mut frozen = Vec::new();
        plan.run(&snap, &[], &mut ExecStats::default(), &mut |r| {
            count(&mut frozen, r)
        });
        assert!(later.len() > frozen.len());
        assert_eq!(frozen.len(), on_snap.len());
    }

    #[test]
    fn first_match_stops_early() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        for i in 0..100 {
            db.insert(fact(&mut v, p, &[&format!("c{i}")]));
        }
        let x = v.var("X");
        let body = vec![Atom::new(p, vec![Term::Var(x)])];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        let mut stats = ExecStats::default();
        assert!(plan.first_match(&db, &[], &mut stats));
        assert_eq!(stats.scanned, 1);
        assert_eq!(stats.rows, 1);
    }

    #[test]
    fn stats_counters_are_consistent() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let mut db = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c")] {
            db.insert(fact(&mut v, e, &[a, b]));
        }
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        let mut stats = ExecStats::default();
        plan.run(&db, &[], &mut stats, &mut |_| true);
        let per_op_scanned: u64 = stats.per_op.iter().map(|c| c.scanned).sum();
        assert_eq!(per_op_scanned, stats.scanned);
        let matched: u64 = stats.per_op.iter().map(|c| c.matched).sum();
        assert_eq!(stats.scanned - matched, stats.backtracks);
        assert_eq!(stats.rows, 1); // only a->b->c
    }
}
