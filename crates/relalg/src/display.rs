//! Human-readable rendering of interned structures.
//!
//! Interned ids are only meaningful together with their [`Vocabulary`], so
//! types implement [`DisplayWith`] and are rendered via
//! `value.display(&vocab)`, which returns an adapter implementing
//! [`std::fmt::Display`].

use std::fmt;

use crate::atom::{Atom, Fact};
use crate::instance::Instance;
use crate::query::Query;
use crate::subst::Substitution;
use crate::term::{Cst, Term, Var};
use crate::vocab::Vocabulary;

/// Render a value given the vocabulary that interned its symbols.
pub trait DisplayWith {
    /// Writes the value using `vocab` to resolve names.
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Adapter implementing [`fmt::Display`].
    fn display<'a>(&'a self, vocab: &'a Vocabulary) -> WithVocab<'a, Self> {
        WithVocab { item: self, vocab }
    }
}

/// The adapter returned by [`DisplayWith::display`].
pub struct WithVocab<'a, T: ?Sized> {
    item: &'a T,
    vocab: &'a Vocabulary,
}

impl<T: DisplayWith + ?Sized> fmt::Display for WithVocab<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.item.fmt_with(self.vocab, f)
    }
}

impl DisplayWith for Var {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(vocab.var_name(*self))
    }
}

impl DisplayWith for Cst {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cst::Data(sym) => {
                let name = vocab.name(*sym);
                // Constants that are not plain lowercase identifiers must
                // be quoted so that printed output parses back.
                let plain = name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if plain {
                    f.write_str(name)
                } else {
                    write!(f, "\"{name}\"")
                }
            }
            // Frozen variables render with a distinguishing prime, as in
            // the paper's Example 4 (n', c', s').
            Cst::Frozen(v) => write!(f, "{}'", vocab.var_name(*v)),
        }
    }
}

impl DisplayWith for Term {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => v.fmt_with(vocab, f),
            Term::Cst(c) => c.fmt_with(vocab, f),
        }
    }
}

fn write_args<T: DisplayWith>(
    args: &[T],
    vocab: &Vocabulary,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    f.write_str("(")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        a.fmt_with(vocab, f)?;
    }
    f.write_str(")")
}

impl DisplayWith for Atom {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(vocab.pred_name(self.pred))?;
        write_args(&self.args, vocab, f)
    }
}

impl DisplayWith for Fact {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(vocab.pred_name(self.pred))?;
        write_args(&self.args, vocab, f)
    }
}

impl DisplayWith for Query {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(vocab.name(self.name))?;
        write_args(&self.head, vocab, f)?;
        f.write_str(" :- ")?;
        if self.body.is_empty() {
            f.write_str("true")?;
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            a.fmt_with(vocab, f)?;
        }
        Ok(())
    }
}

impl DisplayWith for Substitution {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, t)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            v.fmt_with(vocab, f)?;
            f.write_str(" -> ")?;
            t.fmt_with(vocab, f)?;
        }
        f.write_str("}")
    }
}

impl DisplayWith for Instance {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, fact) in self.iter_facts().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            fact.fmt_with(vocab, f)?;
        }
        f.write_str("}")
    }
}

impl DisplayWith for Vec<Cst> {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_args(self, vocab, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;

    #[test]
    fn renders_query_with_constants_and_frozen_vars() {
        let mut v = Vocabulary::new();
        let pupil = v.pred("pupil", 3);
        let (n, c, s) = (v.var("N"), v.var("C"), v.var("S"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![Atom::new(
                pupil,
                vec![Term::Var(n), Term::Var(c), Term::Var(s)],
            )],
        );
        assert_eq!(q.display(&v).to_string(), "q(N) :- pupil(N, C, S)");

        let frozen = crate::subst::freeze_atom(&q.body[0]);
        assert_eq!(frozen.display(&v).to_string(), "pupil(N', C', S')");
    }

    #[test]
    fn renders_empty_body_as_true() {
        let mut v = Vocabulary::new();
        let q = Query::boolean(v.sym("b"), vec![]);
        assert_eq!(q.display(&v).to_string(), "b() :- true");
    }

    #[test]
    fn renders_substitution() {
        let mut v = Vocabulary::new();
        let x = v.var("X");
        let c = v.cst("merano");
        let s = Substitution::from_pairs([(x, Term::Cst(c))]);
        assert_eq!(s.display(&v).to_string(), "{X -> merano}");
    }

    #[test]
    fn renders_instance() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(Fact::new(p, vec![v.cst("a")]));
        assert_eq!(db.display(&v).to_string(), "{p(a)}");
    }
}
