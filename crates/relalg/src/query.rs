//! Generalized conjunctive queries.

use std::collections::BTreeSet;

use crate::atom::Atom;
use crate::term::{Term, Var};
use crate::vocab::Symbol;

/// A (generalized) conjunctive query `Q(ū) ← B`.
///
/// `head` is the tuple of head terms `ū` and `body` the conjunction of atoms
/// `B`. Conceptually the body is a *set* of atoms; the `Vec` preserves the
/// order in which a query was written, and all semantic operations
/// (evaluation, containment, the `G_C` operator) treat it as a set.
///
/// Following the paper's Section 3, queries are **generalized**: a head
/// variable need not occur in the body. Whether the classical safety
/// condition holds is reported by [`Query::is_safe`]; evaluation rejects
/// unsafe queries with a typed error.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// The name of the query predicate (e.g. `q`), used for display only.
    pub name: Symbol,
    /// The head terms `ū` (terms, not just variables: specializations may
    /// instantiate head variables to constants).
    pub head: Vec<Term>,
    /// The body atoms `B`.
    pub body: Vec<Atom>,
}

impl Query {
    /// Creates a query.
    pub fn new(name: Symbol, head: Vec<Term>, body: Vec<Atom>) -> Self {
        Query { name, head, body }
    }

    /// Creates a Boolean query (empty head).
    pub fn boolean(name: Symbol, body: Vec<Atom>) -> Self {
        Query::new(name, Vec::new(), body)
    }

    /// The number of body atoms.
    pub fn size(&self) -> usize {
        self.body.len()
    }

    /// The set of variables occurring in the head.
    pub fn head_vars(&self) -> BTreeSet<Var> {
        self.head.iter().filter_map(|t| t.as_var()).collect()
    }

    /// The set of variables occurring in the body.
    pub fn body_vars(&self) -> BTreeSet<Var> {
        self.body.iter().flat_map(super::atom::Atom::vars).collect()
    }

    /// The set of all variables of the query.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut vars = self.body_vars();
        vars.extend(self.head_vars());
        vars
    }

    /// `true` iff every head variable occurs in the body (the classical
    /// safety condition for conjunctive queries).
    pub fn is_safe(&self) -> bool {
        let body_vars = self.body_vars();
        self.head_vars().iter().all(|v| body_vars.contains(v))
    }

    /// The subquery obtained by keeping only the body atoms selected by
    /// `keep`. The head is unchanged, so the result may be unsafe.
    pub fn subquery<F>(&self, mut keep: F) -> Query
    where
        F: FnMut(&Atom) -> bool,
    {
        Query {
            name: self.name,
            head: self.head.clone(),
            body: self.body.iter().filter(|a| keep(a)).cloned().collect(),
        }
    }

    /// The subquery obtained by dropping the body atom at `index`.
    pub fn without_atom(&self, index: usize) -> Query {
        let mut body = self.body.clone();
        body.remove(index);
        Query {
            name: self.name,
            head: self.head.clone(),
            body,
        }
    }

    /// The query with `atoms` appended to the body.
    pub fn with_atoms(&self, atoms: impl IntoIterator<Item = Atom>) -> Query {
        let mut body = self.body.clone();
        body.extend(atoms);
        Query {
            name: self.name,
            head: self.head.clone(),
            body,
        }
    }

    /// Removes duplicate body atoms (set semantics), preserving first
    /// occurrences.
    pub fn dedup_body(&mut self) {
        let mut seen = BTreeSet::new();
        self.body.retain(|a| seen.insert(a.clone()));
    }

    /// `true` iff the two queries have the same head and the same body *as a
    /// set of atoms* (syntactic identity up to atom order and duplication).
    ///
    /// This is the termination test of Algorithm 1 (Proposition 13), which
    /// is sound — and much cheaper than an equivalence check.
    pub fn same_as(&self, other: &Query) -> bool {
        if self.head != other.head {
            return false;
        }
        let a: BTreeSet<&Atom> = self.body.iter().collect();
        let b: BTreeSet<&Atom> = other.body.iter().collect();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cst, Vocabulary};

    fn setup() -> (Vocabulary, Query) {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let r = v.pred("r", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(r, vec![Term::Var(y)]),
            ],
        );
        (v, q)
    }

    #[test]
    fn safety() {
        let (mut v, q) = setup();
        assert!(q.is_safe());
        let z = v.var("Z");
        let unsafe_q = Query::new(q.name, vec![Term::Var(z)], q.body.clone());
        assert!(!unsafe_q.is_safe());
        // Dropping the only atom mentioning X makes q unsafe.
        assert!(!q.without_atom(0).is_safe());
        // A constant head is always safe.
        let const_q = Query::new(q.name, vec![Term::Cst(v.cst("a"))], vec![]);
        assert!(const_q.is_safe());
    }

    #[test]
    fn var_sets() {
        let (mut v, q) = setup();
        let (x, y) = (v.var("X"), v.var("Y"));
        assert_eq!(q.head_vars(), BTreeSet::from([x]));
        assert_eq!(q.body_vars(), BTreeSet::from([x, y]));
        assert_eq!(q.all_vars(), BTreeSet::from([x, y]));
    }

    #[test]
    fn subquery_selection() {
        let (_, q) = setup();
        let sub = q.subquery(|a| a.arity() == 2);
        assert_eq!(sub.size(), 1);
        assert_eq!(sub.body[0], q.body[0]);
        assert_eq!(q.without_atom(1).body, vec![q.body[0].clone()]);
    }

    #[test]
    fn same_as_is_order_and_duplicate_insensitive() {
        let (_, q) = setup();
        let mut reordered = q.clone();
        reordered.body.reverse();
        assert!(q.same_as(&reordered));
        let mut duplicated = q.clone();
        duplicated.body.push(q.body[0].clone());
        assert!(q.same_as(&duplicated));
        duplicated.dedup_body();
        assert_eq!(duplicated.body.len(), 2);
        assert!(!q.same_as(&q.without_atom(0)));
    }

    #[test]
    fn same_as_distinguishes_heads() {
        let (mut v, q) = setup();
        let mut q2 = q.clone();
        q2.head = vec![Term::Cst(Cst::Data(v.sym("a")))];
        assert!(!q.same_as(&q2));
    }

    #[test]
    fn with_atoms_appends() {
        let (mut v, q) = setup();
        let s = v.pred("s", 1);
        let extended = q.with_atoms([Atom::new(s, vec![Term::Var(v.var("X"))])]);
        assert_eq!(extended.size(), 3);
    }

    #[test]
    fn boolean_query_has_empty_head() {
        let (mut v, q) = setup();
        let b = Query::boolean(v.sym("b"), q.body.clone());
        assert!(b.head.is_empty());
        assert!(b.is_safe());
    }
}
