//! Database instances: sets of facts with per-column indexes.
//!
//! Tuple storage is **columnar**: a relation holds one `Arc`-shared vector
//! per column (`cols[c][r]` is column `c` of row `r`), so batch operators
//! can run over contiguous column slices ([`Relation::col`]) and the
//! tuple-at-a-time executors read single cells ([`Relation::value`],
//! [`RowRef`]) without materializing row vectors.
//!
//! Relations are `Arc`-shared copy-on-write: cloning an [`Instance`] or
//! taking a [`Snapshot`] is O(#relations), and a writer clones a relation's
//! storage only on the first mutation after a share ([`Arc::make_mut`]).
//! The per-column vectors are themselves `Arc`-shared, so that clone copies
//! the cheap index maps once and each column's data lazily, composing with
//! the snapshot design. Because the per-column indexes and the statistics
//! the planner consults live *inside* [`Relation`], a snapshot carries
//! everything evaluation needs — readers on other threads keep probing a
//! frozen, consistent state while the writer diverges.

use std::collections::{BTreeMap, HashMap};
use std::ops::Index;
use std::sync::Arc;

use crate::atom::{Fact, Pred};
use crate::term::Cst;

/// The extension of one relation: a set of tuples in column-major storage
/// plus one hash index per column.
///
/// The column indexes are maintained eagerly on insertion; evaluation picks
/// the most selective bound column of an atom to enumerate candidate tuples
/// (see [`crate::answers`]).
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Column-major tuple storage: `cols[c][r]` holds column `c` of the
    /// tuple at position `r` (positions are insertion order, modulo
    /// [`Relation::remove`]'s swap-removes). Each column vector is
    /// `Arc`-shared across relation clones until first mutation.
    cols: Vec<Arc<Vec<Cst>>>,
    /// Number of tuples (authoritative even for nullary relations, whose
    /// `cols` is empty).
    rows: usize,
    /// Membership/dedup index: tuple → position.
    positions: HashMap<Vec<Cst>, u32>,
    /// `col_index[c][v]` lists the positions of tuples whose column `c`
    /// holds the constant `v`.
    col_index: Vec<HashMap<Cst, Vec<u32>>>,
}

/// A borrowed view of one tuple of a columnar [`Relation`].
///
/// Indexing (`row[c]`) and [`RowRef::get`] read single cells straight out
/// of the column vectors; [`RowRef::to_vec`] materializes the row when an
/// owned tuple is needed.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    rel: &'a Relation,
    pos: u32,
}

impl RowRef<'_> {
    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.rel.cols.len()
    }

    /// The value in column `col`.
    pub fn get(&self, col: usize) -> Cst {
        self.rel.cols[col][self.pos as usize]
    }

    /// The tuple's position within its relation.
    pub fn pos(&self) -> u32 {
        self.pos
    }

    /// Materializes the row as an owned tuple.
    pub fn to_vec(&self) -> Vec<Cst> {
        self.rel.cols.iter().map(|c| c[self.pos as usize]).collect()
    }

    /// `true` iff the row equals `tuple` column-for-column.
    pub fn eq_tuple(&self, tuple: &[Cst]) -> bool {
        self.arity() == tuple.len() && (0..tuple.len()).all(|c| self.get(c) == tuple[c])
    }
}

impl Index<usize> for RowRef<'_> {
    type Output = Cst;

    fn index(&self, col: usize) -> &Cst {
        &self.rel.cols[col][self.pos as usize]
    }
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The number of columns (0 until the first tuple is inserted).
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    pub fn insert(&mut self, args: Vec<Cst>) -> bool {
        if self.positions.contains_key(&args) {
            return false;
        }
        let pos = u32::try_from(self.rows).expect("relation overflow");
        if self.cols.len() < args.len() {
            self.cols.resize_with(args.len(), Arc::default);
            self.col_index.resize_with(args.len(), HashMap::new);
        }
        debug_assert_eq!(self.cols.len(), args.len(), "relations have fixed arity");
        for (c, &v) in args.iter().enumerate() {
            self.col_index[c].entry(v).or_default().push(pos);
            Arc::make_mut(&mut self.cols[c]).push(v);
        }
        self.rows += 1;
        self.positions.insert(args, pos);
        true
    }

    /// Removes a tuple; returns `true` if it was present.
    ///
    /// Indexes are maintained **incrementally**: the last tuple is swapped
    /// into the vacated slot (per column) and only the column-index
    /// postings of the two affected tuples are touched — no rebuild.
    /// `O(arity · bucket)`.
    pub fn remove(&mut self, args: &[Cst]) -> bool {
        let Some(pos) = self.positions.remove(args) else {
            return false;
        };
        let last = u32::try_from(self.rows - 1).expect("relation overflow");
        // Drop the removed tuple's postings.
        for (c, v) in args.iter().enumerate() {
            let bucket = self.col_index[c].get_mut(v).expect("posting exists");
            bucket.retain(|&p| p != pos);
            if bucket.is_empty() {
                self.col_index[c].remove(v);
            }
        }
        if pos != last {
            // The last tuple moves into `pos`: rewrite its postings.
            let moved: Vec<Cst> = self.cols.iter().map(|col| col[last as usize]).collect();
            for (c, v) in moved.iter().enumerate() {
                let bucket = self.col_index[c].get_mut(v).expect("posting exists");
                for p in bucket.iter_mut() {
                    if *p == last {
                        *p = pos;
                    }
                }
            }
            *self
                .positions
                .get_mut(&moved)
                .expect("moved tuple is indexed") = pos;
        }
        for col in &mut self.cols {
            Arc::make_mut(col).swap_remove(pos as usize);
        }
        self.rows -= 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, args: &[Cst]) -> bool {
        self.positions.contains_key(args)
    }

    /// Iterates over the tuples in position order.
    pub fn iter(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..u32::try_from(self.rows).expect("relation overflow"))
            .map(|pos| RowRef { rel: self, pos })
    }

    /// The tuple stored at `pos` (positions come from [`Relation::matches`]).
    pub fn row(&self, pos: u32) -> RowRef<'_> {
        debug_assert!((pos as usize) < self.rows);
        RowRef { rel: self, pos }
    }

    /// The single cell at (`col`, `pos`).
    pub fn value(&self, col: usize, pos: u32) -> Cst {
        self.cols[col][pos as usize]
    }

    /// The contiguous storage of column `col` — the batch operators'
    /// scan surface. Empty for columns the relation does not have.
    pub fn col(&self, col: usize) -> &[Cst] {
        self.cols.get(col).map_or(&[], |c| c.as_slice())
    }

    /// Positions of the tuples whose column `col` holds `value`, or `None`
    /// if no such tuple exists. `O(1)` hash lookup.
    pub fn matches(&self, col: usize, value: Cst) -> Option<&[u32]> {
        self.col_index
            .get(col)
            .and_then(|ix| ix.get(&value))
            .map(Vec::as_slice)
    }

    /// The number of distinct values appearing in column `col` — the
    /// denominator of the planner's uniform selectivity estimate.
    pub fn distinct_in_col(&self, col: usize) -> usize {
        self.col_index.get(col).map_or(0, HashMap::len)
    }
}

/// Read access to a set of indexed relations — the store abstraction
/// compiled plans execute against.
///
/// Implemented by [`Instance`] (the mutable, copy-on-write store) and
/// [`Snapshot`] (a frozen, `Send + Sync` view). `exec::Plan` and everything
/// built on it ([`crate::answers`], the `magik-exec` compiled bodies, the
/// Datalog fixpoints) only ever need this read surface, so a single
/// compiled plan can run against either representation.
pub trait StoreView {
    /// The extension of `pred`, if any fact over it exists.
    fn relation(&self, pred: Pred) -> Option<&Relation>;

    /// Membership test.
    fn contains(&self, fact: &Fact) -> bool {
        self.relation(fact.pred)
            .is_some_and(|r| r.contains(&fact.args))
    }
}

/// A database instance: a finite set of facts, grouped by relation.
///
/// Relations are `Arc`-shared: `clone` and [`Instance::snapshot`] are
/// O(#relations), and mutation copies a relation's storage only when it is
/// shared with a snapshot or another clone (copy-on-write).
#[derive(Debug, Clone, Default)]
pub struct Instance {
    rels: BTreeMap<Pred, Arc<Relation>>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if it was not already present.
    pub fn insert(&mut self, fact: Fact) -> bool {
        Arc::make_mut(self.rels.entry(fact.pred).or_default()).insert(fact.args)
    }

    /// Inserts a batch of facts, updating the per-relation/per-column
    /// indexes incrementally (no rebuild); returns the number of new
    /// facts. Facts are grouped by relation so each relation's entry is
    /// resolved once per run, which makes this the preferred call on hot
    /// ingest paths (e.g. a server's `assert-fact` loop).
    pub fn insert_bulk(&mut self, facts: impl IntoIterator<Item = Fact>) -> usize {
        let mut grouped: BTreeMap<Pred, Vec<Vec<Cst>>> = BTreeMap::new();
        for fact in facts {
            grouped.entry(fact.pred).or_default().push(fact.args);
        }
        let mut added = 0;
        for (pred, tuples) in grouped {
            let rel = Arc::make_mut(self.rels.entry(pred).or_default());
            for args in tuples {
                if rel.insert(args) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Removes a fact; returns `true` if it was present. Column indexes
    /// are maintained incrementally (see [`Relation::remove`]).
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let Some(rel) = self.rels.get_mut(&fact.pred) else {
            return false;
        };
        // Only clone-on-write when the fact is actually present.
        if !rel.contains(&fact.args) {
            return false;
        }
        let removed = Arc::make_mut(rel).remove(&fact.args);
        if rel.is_empty() {
            self.rels.remove(&fact.pred);
        }
        removed
    }

    /// Membership test.
    pub fn contains(&self, fact: &Fact) -> bool {
        StoreView::contains(self, fact)
    }

    /// The extension of `pred`, if any fact over it exists.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.rels.get(&pred).map(Arc::as_ref)
    }

    /// Takes an immutable, `Send + Sync` snapshot of the instance.
    ///
    /// O(#relations): each relation's storage is shared by bumping its
    /// `Arc` refcount. Later mutations of `self` copy the touched relation
    /// first ([`Arc::make_mut`]), so the snapshot keeps observing exactly
    /// the state at the time of the call — including the per-column
    /// indexes and statistics the planner uses.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            rels: self.rels.clone(),
        }
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// `true` iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(|r| r.is_empty())
    }

    /// Iterates over all facts, grouped by relation (relations in
    /// predicate-id order, tuples in insertion order).
    pub fn iter_facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels
            .iter()
            .flat_map(|(&p, r)| r.iter().map(move |args| Fact::new(p, args.to_vec())))
    }

    /// The predicates with at least one fact.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.rels.keys().copied()
    }

    /// `true` iff every fact of `self` is a fact of `other`.
    pub fn is_subset_of(&self, other: &Instance) -> bool {
        self.iter_facts().all(|f| other.contains(&f))
    }

    /// Inserts all facts of `other`; returns the number of new facts.
    pub fn extend_from(&mut self, other: &Instance) -> usize {
        other
            .iter_facts()
            .filter(|f| self.insert(f.clone()))
            .count()
    }
}

impl StoreView for Instance {
    fn relation(&self, pred: Pred) -> Option<&Relation> {
        Instance::relation(self, pred)
    }
}

/// An immutable snapshot of an [`Instance`], sharing the relation storage
/// of the instance it was taken from.
///
/// A snapshot is `Send + Sync` and never changes: evaluation on other
/// threads proceeds against it without any locking while the source
/// instance keeps mutating (copy-on-write keeps the shared storage
/// untouched). Obtain one with [`Instance::snapshot`]; turn it back into a
/// mutable store with [`Snapshot::to_instance`] (also O(#relations)).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    rels: BTreeMap<Pred, Arc<Relation>>,
}

impl Snapshot {
    /// The extension of `pred`, if any fact over it exists.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.rels.get(&pred).map(Arc::as_ref)
    }

    /// Membership test.
    pub fn contains(&self, fact: &Fact) -> bool {
        StoreView::contains(self, fact)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// `true` iff the snapshot has no facts.
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(|r| r.is_empty())
    }

    /// Iterates over all facts, grouped by relation (relations in
    /// predicate-id order, tuples in insertion order).
    pub fn iter_facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels
            .iter()
            .flat_map(|(&p, r)| r.iter().map(move |args| Fact::new(p, args.to_vec())))
    }

    /// The predicates with at least one fact.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.rels.keys().copied()
    }

    /// A mutable instance sharing this snapshot's storage (copy-on-write:
    /// O(#relations) now, per-relation copies only on mutation).
    pub fn to_instance(&self) -> Instance {
        Instance {
            rels: self.rels.clone(),
        }
    }
}

impl StoreView for Snapshot {
    fn relation(&self, pred: Pred) -> Option<&Relation> {
        Snapshot::relation(self, pred)
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.is_subset_of(other)
    }
}

impl Eq for Instance {}

impl FromIterator<Fact> for Instance {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        let mut db = Instance::new();
        for f in iter {
            db.insert(f);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, Vocabulary};

    fn fact(v: &mut Vocabulary, p: Pred, args: &[&str]) -> Fact {
        Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
    }

    #[test]
    fn insert_deduplicates() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        let f = fact(&mut v, p, &["a", "b"]);
        assert!(db.insert(f.clone()));
        assert!(!db.insert(f.clone()));
        assert_eq!(db.len(), 1);
        assert!(db.contains(&f));
    }

    #[test]
    fn column_index_finds_matches() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "b"]));
        db.insert(fact(&mut v, p, &["a", "c"]));
        db.insert(fact(&mut v, p, &["d", "b"]));
        let rel = db.relation(p).unwrap();
        let a = v.cst("a");
        let b = v.cst("b");
        assert_eq!(rel.matches(0, a).unwrap().len(), 2);
        assert_eq!(rel.matches(1, b).unwrap().len(), 2);
        assert_eq!(rel.matches(0, b), None);
        for &pos in rel.matches(0, a).unwrap() {
            assert_eq!(rel.row(pos)[0], a);
            assert_eq!(rel.value(0, pos), a);
        }
        assert_eq!(rel.col(0).len(), 3);
        assert_eq!(rel.arity(), 2);
    }

    #[test]
    fn subset_and_equality() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut small = Instance::new();
        small.insert(fact(&mut v, p, &["a"]));
        let mut big = small.clone();
        big.insert(fact(&mut v, p, &["b"]));
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert_ne!(small, big);
        let same: Instance = small.iter_facts().collect();
        assert_eq!(small, same);
    }

    #[test]
    fn extend_from_counts_new_facts() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a"]));
        let mut other = Instance::new();
        other.insert(fact(&mut v, p, &["a"]));
        other.insert(fact(&mut v, p, &["b"]));
        assert_eq!(db.extend_from(&other), 1);
        assert_eq!(db.len(), 2);
    }

    /// Asserts the internal indexes of two instances agree observationally:
    /// same facts, and identical candidate sets for every (column, value).
    fn assert_index_equivalent(v: &Vocabulary, incremental: &Instance, rebuilt: &Instance) {
        assert_eq!(incremental, rebuilt);
        for p in rebuilt.preds() {
            let (a, b) = (
                incremental.relation(p).expect("same relations"),
                rebuilt.relation(p).unwrap(),
            );
            assert_eq!(a.len(), b.len());
            for col in 0..v.arity(p) {
                for tuple in b.iter() {
                    let val = tuple[col];
                    let lookup = |r: &Relation| {
                        let mut tuples: Vec<Vec<Cst>> = r
                            .matches(col, val)
                            .unwrap_or(&[])
                            .iter()
                            .map(|&pos| r.row(pos).to_vec())
                            .collect();
                        tuples.sort();
                        tuples
                    };
                    assert_eq!(lookup(a), lookup(b), "column {col} index diverged");
                }
            }
        }
    }

    #[test]
    fn bulk_insert_and_remove_keep_indexes_incremental() {
        // Grow with insert_bulk, shrink with remove, and compare the
        // surviving instance against one rebuilt from scratch — both the
        // fact set and every per-column candidate list must agree, and
        // query evaluation (which trusts the index) must return the same
        // answers either way.
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let q = v.pred("q", 1);
        let facts: Vec<Fact> = (0..40)
            .map(|i| {
                if i % 3 == 0 {
                    Fact::new(q, vec![v.cst(&format!("a{}", i % 7))])
                } else {
                    Fact::new(
                        p,
                        vec![v.cst(&format!("a{}", i % 5)), v.cst(&format!("b{}", i % 4))],
                    )
                }
            })
            .collect();
        let mut incremental = Instance::new();
        // Two batches plus duplicate re-insertion.
        let first = incremental.insert_bulk(facts[..20].iter().cloned());
        let second = incremental.insert_bulk(facts[20..].iter().cloned());
        assert_eq!(
            first + second,
            facts.iter().cloned().collect::<Instance>().len()
        );
        assert_eq!(incremental.insert_bulk(facts.iter().cloned()), 0);
        // Remove every fourth distinct fact.
        let distinct: Vec<Fact> = incremental.iter_facts().collect();
        for f in distinct.iter().step_by(4) {
            assert!(incremental.remove(f));
            assert!(!incremental.remove(f));
        }
        let survivors: Instance = distinct
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 0)
            .map(|(_, f)| f.clone())
            .collect();
        assert_index_equivalent(&v, &incremental, &survivors);

        // Evaluation sees identical answers through either instance.
        let (x, y) = (v.var("X"), v.var("Y"));
        let query = crate::Query::new(
            v.sym("join"),
            vec![crate::Term::Var(x), crate::Term::Var(y)],
            vec![
                Atom::new(p, vec![crate::Term::Var(x), crate::Term::Var(y)]),
                Atom::new(q, vec![crate::Term::Var(x)]),
            ],
        );
        let a = crate::answers(&query, &incremental).unwrap();
        let b = crate::answers(&query, &survivors).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn remove_handles_swap_with_shared_postings() {
        // The removed tuple and the swapped-in last tuple share column
        // values, exercising the posting rewrite on a shared bucket.
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        let (a, b, c) = (v.cst("a"), v.cst("b"), v.cst("c"));
        db.insert(Fact::new(p, vec![a, b]));
        db.insert(Fact::new(p, vec![a, c]));
        db.insert(Fact::new(p, vec![a, a]));
        assert!(db.remove(&Fact::new(p, vec![a, b])));
        let rel = db.relation(p).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.matches(0, a).unwrap().len(), 2);
        assert_eq!(rel.matches(1, b), None);
        for &pos in rel.matches(1, a).unwrap() {
            assert!(rel.row(pos).eq_tuple(&[a, a]));
        }
        // Removing the final facts drops the relation entirely.
        assert!(db.remove(&Fact::new(p, vec![a, a])));
        assert!(db.remove(&Fact::new(p, vec![a, c])));
        assert!(db.relation(p).is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let q = v.pred("q", 1);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "b"]));
        db.insert(fact(&mut v, q, &["a"]));
        let snap = db.snapshot();
        // Mutate every relation after the snapshot: insert, remove, and
        // drop a relation entirely.
        db.insert(fact(&mut v, p, &["c", "d"]));
        assert!(db.remove(&fact(&mut v, q, &["a"])));
        assert!(db.remove(&fact(&mut v, p, &["a", "b"])));
        // The snapshot still sees exactly the original state, indexes
        // included.
        assert_eq!(snap.len(), 2);
        assert!(snap.contains(&fact(&mut v, p, &["a", "b"])));
        assert!(!snap.contains(&fact(&mut v, p, &["c", "d"])));
        let rel = snap.relation(p).unwrap();
        assert_eq!(rel.matches(0, v.cst("a")).unwrap().len(), 1);
        assert_eq!(snap.preds().count(), 2);
        // And the live instance sees only the new state.
        assert_eq!(db.len(), 1);
        assert!(db.relation(q).is_none());
    }

    #[test]
    fn snapshot_roundtrips_to_instance() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a"]));
        db.insert(fact(&mut v, p, &["b"]));
        let snap = db.snapshot();
        let mut copy = snap.to_instance();
        assert_eq!(copy, db);
        // Writing through the round-tripped instance leaves the snapshot
        // (and the original) untouched.
        copy.insert(fact(&mut v, p, &["c"]));
        assert_eq!(copy.len(), 3);
        assert_eq!(snap.len(), 2);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn clone_shares_until_first_write() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a"]));
        let mut other = db.clone();
        // Diverge both sides; neither observes the other's writes.
        db.insert(fact(&mut v, p, &["b"]));
        other.insert(fact(&mut v, p, &["c"]));
        assert!(db.contains(&fact(&mut v, p, &["b"])));
        assert!(!db.contains(&fact(&mut v, p, &["c"])));
        assert!(other.contains(&fact(&mut v, p, &["c"])));
        assert!(!other.contains(&fact(&mut v, p, &["b"])));
    }

    #[test]
    fn removing_an_absent_fact_does_not_unshare() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a"]));
        let snap = db.snapshot();
        let absent = fact(&mut v, p, &["zz"]);
        assert!(!db.remove(&absent));
        // The relation is still the very same shared allocation.
        assert!(std::ptr::eq(
            db.relation(p).unwrap(),
            snap.relation(p).unwrap()
        ));
    }

    #[test]
    fn cloned_relation_shares_column_storage_until_write() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "b"]));
        let rel = db.relation(p).unwrap();
        // A clone (what `Arc::make_mut` performs on a shared relation)
        // shares the per-column vectors...
        let shared = rel.clone();
        assert_eq!(rel.col(0).as_ptr(), shared.col(0).as_ptr());
        assert_eq!(rel.col(1).as_ptr(), shared.col(1).as_ptr());
        // ...until the clone's first write, which copies the columns.
        let mut diverged = rel.clone();
        assert!(diverged.insert(vec![v.cst("c"), v.cst("d")]));
        assert_ne!(rel.col(0).as_ptr(), diverged.col(0).as_ptr());
        assert_eq!(rel.len(), 1);
        assert_eq!(diverged.len(), 2);
        assert!(diverged.contains(&[v.cst("a"), v.cst("b")]));
    }

    #[test]
    fn iter_facts_covers_all_relations() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let q = v.pred("q", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a"]));
        db.insert(fact(&mut v, q, &["a", "b"]));
        assert_eq!(db.iter_facts().count(), 2);
        assert_eq!(db.preds().count(), 2);
    }
}
