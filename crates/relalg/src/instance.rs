//! Database instances: sets of facts with per-column indexes.

use std::collections::{BTreeMap, HashMap};

use crate::atom::{Fact, Pred};
use crate::term::Cst;

/// The extension of one relation: a set of tuples plus one hash index per
/// column.
///
/// The column indexes are maintained eagerly on insertion; evaluation picks
/// the most selective bound column of an atom to enumerate candidate tuples
/// (see [`crate::answers`]).
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Tuple storage, in insertion order.
    tuples: Vec<Vec<Cst>>,
    /// Membership/dedup index: tuple → position in `tuples`.
    positions: HashMap<Vec<Cst>, u32>,
    /// `col_index[c][v]` lists the positions of tuples whose column `c`
    /// holds the constant `v`.
    col_index: Vec<HashMap<Cst, Vec<u32>>>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    pub fn insert(&mut self, args: Vec<Cst>) -> bool {
        if self.positions.contains_key(&args) {
            return false;
        }
        let pos = u32::try_from(self.tuples.len()).expect("relation overflow");
        if self.col_index.len() < args.len() {
            self.col_index.resize_with(args.len(), HashMap::new);
        }
        for (c, &v) in args.iter().enumerate() {
            self.col_index[c].entry(v).or_default().push(pos);
        }
        self.positions.insert(args.clone(), pos);
        self.tuples.push(args);
        true
    }

    /// Membership test.
    pub fn contains(&self, args: &[Cst]) -> bool {
        self.positions.contains_key(args)
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Cst]> {
        self.tuples.iter().map(Vec::as_slice)
    }

    /// The tuple stored at `pos` (positions come from [`Relation::matches`]).
    pub fn tuple(&self, pos: u32) -> &[Cst] {
        &self.tuples[pos as usize]
    }

    /// Positions of the tuples whose column `col` holds `value`, or `None`
    /// if no such tuple exists. `O(1)` hash lookup.
    pub fn matches(&self, col: usize, value: Cst) -> Option<&[u32]> {
        self.col_index
            .get(col)
            .and_then(|ix| ix.get(&value))
            .map(Vec::as_slice)
    }
}

/// A database instance: a finite set of facts, grouped by relation.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    rels: BTreeMap<Pred, Relation>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if it was not already present.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.rels.entry(fact.pred).or_default().insert(fact.args)
    }

    /// Membership test.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.rels
            .get(&fact.pred)
            .is_some_and(|r| r.contains(&fact.args))
    }

    /// The extension of `pred`, if any fact over it exists.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.rels.get(&pred)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// `true` iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(Relation::is_empty)
    }

    /// Iterates over all facts, grouped by relation (relations in
    /// predicate-id order, tuples in insertion order).
    pub fn iter_facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels
            .iter()
            .flat_map(|(&p, r)| r.iter().map(move |args| Fact::new(p, args.to_vec())))
    }

    /// The predicates with at least one fact.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.rels.keys().copied()
    }

    /// `true` iff every fact of `self` is a fact of `other`.
    pub fn is_subset_of(&self, other: &Instance) -> bool {
        self.iter_facts().all(|f| other.contains(&f))
    }

    /// Inserts all facts of `other`; returns the number of new facts.
    pub fn extend_from(&mut self, other: &Instance) -> usize {
        other
            .iter_facts()
            .filter(|f| self.insert(f.clone()))
            .count()
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.is_subset_of(other)
    }
}

impl Eq for Instance {}

impl FromIterator<Fact> for Instance {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        let mut db = Instance::new();
        for f in iter {
            db.insert(f);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;

    fn fact(v: &mut Vocabulary, p: Pred, args: &[&str]) -> Fact {
        Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
    }

    #[test]
    fn insert_deduplicates() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        let f = fact(&mut v, p, &["a", "b"]);
        assert!(db.insert(f.clone()));
        assert!(!db.insert(f.clone()));
        assert_eq!(db.len(), 1);
        assert!(db.contains(&f));
    }

    #[test]
    fn column_index_finds_matches() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "b"]));
        db.insert(fact(&mut v, p, &["a", "c"]));
        db.insert(fact(&mut v, p, &["d", "b"]));
        let rel = db.relation(p).unwrap();
        let a = v.cst("a");
        let b = v.cst("b");
        assert_eq!(rel.matches(0, a).unwrap().len(), 2);
        assert_eq!(rel.matches(1, b).unwrap().len(), 2);
        assert_eq!(rel.matches(0, b), None);
        for &pos in rel.matches(0, a).unwrap() {
            assert_eq!(rel.tuple(pos)[0], a);
        }
    }

    #[test]
    fn subset_and_equality() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut small = Instance::new();
        small.insert(fact(&mut v, p, &["a"]));
        let mut big = small.clone();
        big.insert(fact(&mut v, p, &["b"]));
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert_ne!(small, big);
        let same: Instance = small.iter_facts().collect();
        assert_eq!(small, same);
    }

    #[test]
    fn extend_from_counts_new_facts() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a"]));
        let mut other = Instance::new();
        other.insert(fact(&mut v, p, &["a"]));
        other.insert(fact(&mut v, p, &["b"]));
        assert_eq!(db.extend_from(&other), 1);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn iter_facts_covers_all_relations() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let q = v.pred("q", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a"]));
        db.insert(fact(&mut v, q, &["a", "b"]));
        assert_eq!(db.iter_facts().count(), 2);
        assert_eq!(db.preds().count(), 2);
    }
}
