//! Vectorized batch execution of compiled plans.
//!
//! The tuple-at-a-time executor in [`crate::exec`] pays per-tuple dispatch
//! at every search node: one recursive call, one register write, and one
//! index probe per candidate tuple. This module recompiles the same
//! [`Plan`] IR into a [`BatchPlan`] that processes a whole **batch** of
//! partial assignments per operator:
//!
//! * A batch is column-major ([`Batch`]): one vector per plan slot, so an
//!   operator reads its join keys out of contiguous columns and output
//!   columns are built by sequential gathers.
//! * Constant filters (and repeated-variable filters, which compare two
//!   columns of the same relation) are evaluated **once per batch** into a
//!   selection vector of candidate positions — the vectorized scan.
//! * Joins against already-bound slots run under one of three operators,
//!   chosen per op at compile time by a cost model over the same
//!   statistics the planner uses (relation cardinality, exact const
//!   index-bucket sizes, distinct-value counts): [`JoinStrategy::NestedLoop`]
//!   probes the per-column hash index once per input row (the batched
//!   analogue of the tuple executor), [`JoinStrategy::HashJoin`] builds a
//!   hash table over the filtered relation once per batch and probes it
//!   per row, and [`JoinStrategy::MergeJoin`] sorts both sides and merges —
//!   cheapest for duplicate-heavy keys with large outputs.
//!
//! Batch execution enumerates **exactly** the assignments the tuple
//! executor enumerates (proptests in `magik-exec` assert equivalence
//! against both the tuple executor and the preserved seed oracle); only
//! the order of rows within a batch may differ, which no caller observes
//! because every consumer dedupes into sets or instances. The trade-off is
//! materialization: intermediate matches are held in memory per op, so
//! first-match-style early exits (`has_answer`, containment, DRed support
//! checks) stay on the tuple executor.

use crate::atom::Pred;
use crate::exec::{Access, ColAction, ExecStats, Key, Plan};
use crate::instance::{Relation, StoreView};
use crate::term::{Cst, Var};

/// A column-major batch of partial assignments over a plan's slots.
///
/// `cols[s]` holds the value of slot `s` for every row — empty until some
/// op (or the seed) binds the slot. `len` is authoritative: a batch with
/// no bound slots still has a row count (the unit seed of a full
/// evaluation is one row binding nothing).
#[derive(Debug, Clone)]
pub struct Batch {
    cols: Vec<Vec<Cst>>,
    len: usize,
}

impl Batch {
    /// An empty batch (no rows) over `slots` slots.
    pub fn empty(slots: usize) -> Batch {
        Batch {
            cols: vec![Vec::new(); slots],
            len: 0,
        }
    }

    /// The seed batch for one run: one row per seed, with the plan's
    /// declared-bound slots filled from the seed pairs (entries for
    /// variables without a slot are ignored, exactly like [`Plan::run`]).
    ///
    /// For a full evaluation (no bound variables) pass one empty seed:
    /// the unit batch with a single all-unbound row.
    pub fn from_seeds(plan: &Plan, seeds: &[Vec<(Var, Cst)>]) -> Batch {
        let slots = plan.slots();
        let mut cols = vec![Vec::new(); slots.len()];
        for (s, col) in cols.iter_mut().enumerate().take(plan.seed_slots()) {
            col.reserve(seeds.len());
            let var = slots[s];
            for seed in seeds {
                let value = seed
                    .iter()
                    .find(|&&(v, _)| v == var)
                    .map(|&(_, c)| c)
                    .expect("every declared-bound variable must be seeded");
                col.push(value);
            }
        }
        Batch {
            cols,
            len: seeds.len(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of slot `slot` in row `row` (the slot must be bound).
    pub fn value(&self, slot: usize, row: usize) -> Cst {
        self.cols[slot][row]
    }

    /// The column of slot `slot` (empty if unbound).
    pub fn col(&self, slot: usize) -> &[Cst] {
        &self.cols[slot]
    }
}

/// The join operator a [`BatchPlan`] op executes with, chosen at compile
/// time by the cost model (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Probe the relation's per-column hash index once per input row —
    /// the batched analogue of the tuple executor's probe chain. Wins for
    /// small batches.
    NestedLoop,
    /// Build a hash table over the (const-filtered) relation once per
    /// batch, probe it per input row. Wins for large batches against
    /// selective keys.
    HashJoin,
    /// Sort both sides on the join key and merge. Wins for
    /// duplicate-heavy keys whose output is too large for per-probe
    /// bucket scans to amortize.
    MergeJoin,
}

impl JoinStrategy {
    /// Stable lower-case name (explain output, metrics).
    pub fn name(self) -> &'static str {
        match self {
            JoinStrategy::NestedLoop => "nested_loop",
            JoinStrategy::HashJoin => "hash_join",
            JoinStrategy::MergeJoin => "merge_join",
        }
    }
}

/// One batch operator: the compile-time classification of a [`Plan`] op's
/// actions plus the chosen join strategy.
#[derive(Debug, Clone)]
pub struct BatchOp {
    /// Index of the source atom in the body (same as the plan op's).
    pub atom: usize,
    /// The matched predicate.
    pub pred: Pred,
    /// The *nominal* join operator: the cost model's choice under the
    /// compile-time batch estimate (what `explain-plan` and the server's
    /// plan introspection report). Execution re-runs the same cost model
    /// against the **actual** batch size and live relation — delta
    /// batches vary round to round, so the runtime choice can differ.
    /// Meaningful only when `join_keys` is non-empty; ops without join
    /// keys enumerate the candidate selection per row (a filtered cross
    /// product).
    pub strategy: JoinStrategy,
    /// The planner's estimated input batch size when the nominal strategy
    /// was chosen (explain output only).
    pub est_rows: usize,
    /// A forced operator (`BatchPlan::with_strategy`): overrides the
    /// runtime cost-model choice on every join op.
    forced: Option<JoinStrategy>,
    /// Constant equality filters `(col, value)` — folded into the
    /// selection vector once per batch.
    const_filters: Vec<(usize, Cst)>,
    /// Repeated-variable filters `(col, col')`: both columns of a
    /// candidate tuple must agree — also folded into the selection vector.
    self_eq: Vec<(usize, usize)>,
    /// Join conditions `(col, slot)`: the candidate's column must equal
    /// the input row's already-bound slot.
    join_keys: Vec<(usize, usize)>,
    /// Fresh bindings `(col, slot)` this op adds.
    binds: Vec<(usize, usize)>,
    /// Slots bound before this op runs (seed slots + earlier binds) —
    /// the columns carried forward into the output batch.
    carry: Vec<usize>,
    /// For [`JoinStrategy::NestedLoop`]: the join column whose index is
    /// probed per input row (the one with the most distinct values).
    probe_col: usize,
}

impl BatchOp {
    /// The join-key columns and the slots they compare against.
    pub fn join_keys(&self) -> &[(usize, usize)] {
        &self.join_keys
    }
}

/// A plan recompiled for batch execution: the same op order and slot
/// table as the source [`Plan`], with each op's actions classified into
/// batch-friendly stages and a join operator chosen per op.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    ops: Vec<BatchOp>,
    slots: usize,
}

/// `n * log2(n)` with a floor of `n` (sort-cost sketch).
fn n_log_n(n: usize) -> usize {
    let bits = usize::BITS - n.leading_zeros();
    n.saturating_mul((bits as usize).max(1))
}

impl BatchPlan {
    /// Compiles `plan` for batch execution.
    ///
    /// `stats` supplies the statistics driving the per-op join-strategy
    /// choice (same source as [`Plan::compile`]); without it small-batch
    /// defaults are used. `expected_rows` is the anticipated seed batch
    /// size — `1` for full evaluation, the nominal delta-batch size for
    /// semi-naive delta plans. The choice affects only speed, never
    /// results.
    pub fn compile(plan: &Plan, stats: Option<&dyn StoreView>, expected_rows: usize) -> BatchPlan {
        Self::compile_inner(plan, stats, expected_rows, None)
    }

    /// [`BatchPlan::compile`] with every join op forced to `strategy` —
    /// the equivalence-test hook.
    pub fn with_strategy(plan: &Plan, strategy: JoinStrategy) -> BatchPlan {
        Self::compile_inner(plan, None, 1, Some(strategy))
    }

    fn compile_inner(
        plan: &Plan,
        stats: Option<&dyn StoreView>,
        expected_rows: usize,
        force: Option<JoinStrategy>,
    ) -> BatchPlan {
        let mut bound: Vec<usize> = (0..plan.seed_slots()).collect();
        let mut b_est = expected_rows.max(1);
        let mut ops = Vec::with_capacity(plan.ops().len());
        for op in plan.ops() {
            let mut const_filters = Vec::new();
            let mut self_eq = Vec::new();
            let mut join_keys = Vec::new();
            let mut binds = Vec::new();
            // The probe access is a join condition or const filter the
            // tuple planner elided from the action list; restore it.
            if let Access::Probe { col, key } = op.access {
                match key {
                    Key::Const(value) => const_filters.push((col, value)),
                    Key::Slot(slot) => join_keys.push((col, slot)),
                }
            }
            for &action in &op.actions {
                match action {
                    ColAction::CheckConst { col, value } => const_filters.push((col, value)),
                    ColAction::CheckSlot { col, slot } => {
                        if bound.contains(&slot) {
                            join_keys.push((col, slot));
                        } else {
                            // Bound within this op: a repeated variable.
                            // Its first occurrence is a Bind at an earlier
                            // column of the same atom.
                            let first = binds
                                .iter()
                                .find(|&&(_, s)| s == slot)
                                .map(|&(c, _)| c)
                                .expect("repeated variables bind before they are checked");
                            self_eq.push((col, first));
                        }
                    }
                    ColAction::Bind { col, slot } => binds.push((col, slot)),
                }
            }
            let carry = bound.clone();
            let (strategy, est_rows, out_est) =
                choose_strategy(op.pred, &const_filters, &join_keys, b_est, stats, force);
            // Nested-loop probes go through the join column with the most
            // distinct values (smallest expected bucket).
            let probe_col = join_keys
                .iter()
                .map(|&(col, _)| col)
                .max_by_key(|&col| {
                    stats
                        .and_then(|db| db.relation(op.pred))
                        .map_or(0, |r| r.distinct_in_col(col))
                })
                .unwrap_or(0);
            for &(_, slot) in &binds {
                bound.push(slot);
            }
            ops.push(BatchOp {
                atom: op.atom,
                pred: op.pred,
                strategy,
                est_rows,
                forced: force,
                const_filters,
                self_eq,
                join_keys,
                binds,
                carry,
                probe_col,
            });
            b_est = out_est;
        }
        BatchPlan {
            ops,
            slots: plan.slots().len(),
        }
    }

    /// The batch ops, parallel to the source plan's ops.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Executes the plan over `db`, starting from `seed` (see
    /// [`Batch::from_seeds`]), and returns the batch of complete rows —
    /// every plan slot bound, one row per satisfying assignment (row
    /// order is unspecified; duplicates mirror the tuple executor's).
    pub fn run<S: StoreView + ?Sized>(&self, db: &S, seed: Batch, stats: &mut ExecStats) -> Batch {
        stats.ensure_ops(self.ops.len());
        stats.batches += 1;
        let mut batch = seed;
        for (i, op) in self.ops.iter().enumerate() {
            if batch.is_empty() {
                return Batch::empty(self.slots);
            }
            stats.per_op[i].entered += batch.len() as u64;
            let Some(rel) = db.relation(op.pred) else {
                return Batch::empty(self.slots);
            };
            let matches = op.execute(rel, &batch, i, stats);
            stats.per_op[i].matched += matches.len() as u64;
            stats.batch_rows += matches.len() as u64;
            batch = op.gather(rel, &batch, &matches, self.slots);
        }
        stats.rows += batch.len() as u64;
        batch
    }
}

/// Cost-model choice of the join operator for one op. Returns the chosen
/// strategy, the input-batch estimate it was chosen under, and the
/// estimated output batch size (the next op's input estimate).
fn choose_strategy(
    pred: Pred,
    const_filters: &[(usize, Cst)],
    join_keys: &[(usize, usize)],
    b_est: usize,
    stats: Option<&dyn StoreView>,
    force: Option<JoinStrategy>,
) -> (JoinStrategy, usize, usize) {
    let rel = stats.and_then(|db| db.relation(pred));
    let Some(rel) = rel else {
        // No statistics: small batches behave like the tuple executor,
        // large ones default to hash join. Output size is unknowable;
        // assume the batch neither grows nor shrinks.
        let default = if b_est <= 8 {
            JoinStrategy::NestedLoop
        } else {
            JoinStrategy::HashJoin
        };
        let strategy = force.unwrap_or(if join_keys.is_empty() {
            JoinStrategy::NestedLoop
        } else {
            default
        });
        return (strategy, b_est, b_est);
    };
    let (strategy, out) = choice_for(rel, const_filters, join_keys, b_est);
    (force.unwrap_or(strategy), b_est, out)
}

/// The cost model proper: the operator choice and output-size estimate for
/// one join against `rel` with an input batch of `b` rows. Shared by the
/// compile-time (nominal) choice and the per-batch runtime choice —
/// integer arithmetic over the relation's exact index statistics, cheap
/// enough to re-run on every batch.
fn choice_for(
    rel: &Relation,
    const_filters: &[(usize, Cst)],
    join_keys: &[(usize, usize)],
    b: usize,
) -> (JoinStrategy, usize) {
    const OUT_CAP: usize = 1 << 30;
    let n = rel.len();
    // Candidates surviving the const filters: exact bucket size for the
    // most selective filter (the planner's trick, reused).
    let n_cand = const_filters
        .iter()
        .map(|&(col, v)| rel.matches(col, v).map_or(0, <[u32]>::len))
        .min()
        .unwrap_or(n);
    if join_keys.is_empty() {
        // Filtered cross product: no operator choice to make.
        let out = b.saturating_mul(n_cand.max(1)).min(OUT_CAP);
        return (JoinStrategy::NestedLoop, out);
    }
    // Uniform-selectivity output estimate: each join column divides the
    // candidate set by its distinct-value count.
    let mut per_row = n_cand;
    for &(col, _) in join_keys {
        per_row /= rel.distinct_in_col(col).max(1);
    }
    let per_row = per_row.max(1);
    let out = b.saturating_mul(per_row).min(OUT_CAP);
    // Best single-column index bucket for nested-loop probing.
    let d_best = join_keys
        .iter()
        .map(|&(col, _)| rel.distinct_in_col(col).max(1))
        .max()
        .unwrap_or(1);
    let bucket = n.div_ceil(d_best).max(1);
    let nested = b.saturating_mul(bucket);
    let hash = 4 * (n_cand + b) + 2 * out;
    let merge = n_log_n(n_cand) + n_log_n(b) + out;
    let strategy = if nested <= hash && nested <= merge {
        JoinStrategy::NestedLoop
    } else if hash <= merge {
        JoinStrategy::HashJoin
    } else {
        JoinStrategy::MergeJoin
    };
    (strategy, out)
}

impl BatchOp {
    /// The selection vector: positions of `rel` surviving the const and
    /// repeated-variable filters, computed once per batch. Uses the most
    /// selective const filter's index bucket when one exists.
    fn candidates(&self, rel: &Relation, i: usize, stats: &mut ExecStats) -> Vec<u32> {
        let verify = |pos: u32| -> bool {
            self.const_filters
                .iter()
                .all(|&(col, v)| rel.value(col, pos) == v)
                && self
                    .self_eq
                    .iter()
                    .all(|&(col, other)| rel.value(col, pos) == rel.value(other, pos))
        };
        let best = self
            .const_filters
            .iter()
            .map(|&(col, v)| (rel.matches(col, v).unwrap_or(&[]), v, col))
            .min_by_key(|(bucket, _, _)| bucket.len());
        match best {
            Some((bucket, _, _)) => {
                stats.probes += 1;
                stats.per_op[i].probes += 1;
                bucket.iter().copied().filter(|&p| verify(p)).collect()
            }
            None => {
                let n = u32::try_from(rel.len()).expect("relation overflow");
                (0..n).filter(|&p| verify(p)).collect()
            }
        }
    }

    /// Runs the op over one input batch, returning the matched
    /// `(input row, relation position)` pairs.
    fn execute(
        &self,
        rel: &Relation,
        batch: &Batch,
        i: usize,
        stats: &mut ExecStats,
    ) -> Vec<(u32, u32)> {
        let rows = u32::try_from(batch.len()).expect("batch overflow");
        if self.join_keys.is_empty() {
            // Filtered cross product of the batch with the selection.
            let cand = self.candidates(rel, i, stats);
            stats.scanned += (batch.len() * cand.len()) as u64;
            stats.per_op[i].scanned += (batch.len() * cand.len()) as u64;
            let mut out = Vec::with_capacity(batch.len() * cand.len());
            for r in 0..rows {
                for &p in &cand {
                    out.push((r, p));
                }
            }
            return out;
        }
        // Re-run the cost model against the actual batch size and the
        // live relation (the nominal compile-time choice assumed an
        // estimated batch; delta batches vary per round).
        let strategy = self.forced.unwrap_or_else(|| {
            choice_for(rel, &self.const_filters, &self.join_keys, batch.len()).0
        });
        match strategy {
            JoinStrategy::NestedLoop => {
                stats.join_nested += 1;
                self.nested_loop(rel, batch, i, stats)
            }
            JoinStrategy::HashJoin => {
                stats.join_hash += 1;
                let cand = self.candidates(rel, i, stats);
                self.hash_join(rel, batch, &cand, i, stats)
            }
            JoinStrategy::MergeJoin => {
                stats.join_merge += 1;
                let cand = self.candidates(rel, i, stats);
                self.merge_join(rel, batch, &cand, i, stats)
            }
        }
    }

    /// Per-row index probes, verifying the remaining filters per
    /// candidate — the batched tuple executor.
    fn nested_loop(
        &self,
        rel: &Relation,
        batch: &Batch,
        i: usize,
        stats: &mut ExecStats,
    ) -> Vec<(u32, u32)> {
        let probe_slot = self
            .join_keys
            .iter()
            .find(|&&(col, _)| col == self.probe_col)
            .map(|&(_, slot)| slot)
            .expect("probe_col is a join column");
        // Residual checks beyond the probed column. When there are none —
        // the overwhelmingly common selective-index case — every bucket
        // entry matches and the inner loop is a straight extend.
        let residual: Vec<(usize, usize)> = self
            .join_keys
            .iter()
            .copied()
            .filter(|&(col, _)| col != self.probe_col)
            .collect();
        let exact = residual.is_empty() && self.const_filters.is_empty() && self.self_eq.is_empty();
        let keys = batch.col(probe_slot);
        let mut out = Vec::with_capacity(batch.len());
        let mut scanned = 0u64;
        for (r, &key) in keys.iter().enumerate() {
            let bucket = rel.matches(self.probe_col, key).unwrap_or(&[]);
            scanned += bucket.len() as u64;
            let r = u32::try_from(r).expect("batch overflow");
            if exact {
                out.extend(bucket.iter().map(|&pos| (r, pos)));
                continue;
            }
            for &pos in bucket {
                let ok = self
                    .const_filters
                    .iter()
                    .all(|&(col, v)| rel.value(col, pos) == v)
                    && self
                        .self_eq
                        .iter()
                        .all(|&(col, other)| rel.value(col, pos) == rel.value(other, pos))
                    && residual
                        .iter()
                        .all(|&(col, slot)| rel.value(col, pos) == batch.value(slot, r as usize));
                if ok {
                    out.push((r, pos));
                }
            }
        }
        stats.probes += batch.len() as u64;
        stats.per_op[i].probes += batch.len() as u64;
        stats.scanned += scanned;
        stats.per_op[i].scanned += scanned;
        out
    }

    /// Build a hash table over the candidates keyed on all join columns,
    /// probe it once per input row.
    fn hash_join(
        &self,
        rel: &Relation,
        batch: &Batch,
        cand: &[u32],
        i: usize,
        stats: &mut ExecStats,
    ) -> Vec<(u32, u32)> {
        // A chained hash table over the candidates, built without any
        // per-key allocation: `heads` maps a table slot to the first
        // candidate index in its chain, `next` links the rest. The table
        // is keyed on a cheap mix of the combined join key; probe hits
        // verify the actual column values, so hash (or slot) collisions
        // cost a comparison, never a wrong row.
        const EMPTY: u32 = u32::MAX;
        let key_hash = |values: &mut dyn Iterator<Item = Cst>| -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for v in values {
                h = (h ^ v.bits())
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(31);
            }
            h
        };
        let cap = (cand.len().max(1) * 2).next_power_of_two();
        let mask = (cap - 1) as u64;
        let mut heads: Vec<u32> = vec![EMPTY; cap];
        let mut next: Vec<u32> = vec![EMPTY; cand.len()];
        for (idx, &pos) in cand.iter().enumerate() {
            let h = key_hash(&mut self.join_keys.iter().map(|&(col, _)| rel.value(col, pos)));
            let slot = (h & mask) as usize;
            next[idx] = heads[slot];
            heads[slot] = u32::try_from(idx).expect("relation overflow");
        }
        let mut out = Vec::with_capacity(batch.len());
        let mut scanned = 0u64;
        for r in 0..batch.len() {
            let h = key_hash(&mut self.join_keys.iter().map(|&(_, slot)| batch.value(slot, r)));
            let r32 = u32::try_from(r).expect("batch overflow");
            let mut idx = heads[(h & mask) as usize];
            while idx != EMPTY {
                let pos = cand[idx as usize];
                scanned += 1;
                let ok = self
                    .join_keys
                    .iter()
                    .all(|&(col, slot)| rel.value(col, pos) == batch.value(slot, r));
                if ok {
                    out.push((r32, pos));
                }
                idx = next[idx as usize];
            }
        }
        stats.probes += batch.len() as u64;
        stats.per_op[i].probes += batch.len() as u64;
        stats.scanned += scanned;
        stats.per_op[i].scanned += scanned;
        out
    }

    /// Sort both sides on the join key, merge equal-key groups.
    fn merge_join(
        &self,
        rel: &Relation,
        batch: &Batch,
        cand: &[u32],
        i: usize,
        stats: &mut ExecStats,
    ) -> Vec<(u32, u32)> {
        let build_key = |pos: u32| -> Vec<Cst> {
            self.join_keys
                .iter()
                .map(|&(col, _)| rel.value(col, pos))
                .collect()
        };
        let probe_key = |r: usize| -> Vec<Cst> {
            self.join_keys
                .iter()
                .map(|&(_, slot)| batch.value(slot, r))
                .collect()
        };
        let mut left: Vec<(Vec<Cst>, u32)> = (0..batch.len())
            .map(|r| (probe_key(r), u32::try_from(r).expect("batch overflow")))
            .collect();
        let mut right: Vec<(Vec<Cst>, u32)> = cand.iter().map(|&p| (build_key(p), p)).collect();
        left.sort();
        right.sort();
        let mut out = Vec::new();
        let (mut li, mut ri) = (0, 0);
        while li < left.len() && ri < right.len() {
            match left[li].0.cmp(&right[ri].0) {
                std::cmp::Ordering::Less => li += 1,
                std::cmp::Ordering::Greater => ri += 1,
                std::cmp::Ordering::Equal => {
                    // Group bounds on both sides.
                    let le = (li..left.len())
                        .take_while(|&j| left[j].0 == left[li].0)
                        .last()
                        .unwrap()
                        + 1;
                    let re = (ri..right.len())
                        .take_while(|&j| right[j].0 == right[ri].0)
                        .last()
                        .unwrap()
                        + 1;
                    let pairs = ((le - li) * (re - ri)) as u64;
                    stats.scanned += pairs;
                    stats.per_op[i].scanned += pairs;
                    for l in &left[li..le] {
                        for r in &right[ri..re] {
                            out.push((l.1, r.1));
                        }
                    }
                    li = le;
                    ri = re;
                }
            }
        }
        out
    }

    /// Builds the output batch from the matched pairs: carried columns
    /// gather from the input batch, bind columns gather from the relation.
    fn gather(&self, rel: &Relation, batch: &Batch, matches: &[(u32, u32)], slots: usize) -> Batch {
        let mut cols = vec![Vec::new(); slots];
        for &slot in &self.carry {
            let src = batch.col(slot);
            let col = &mut cols[slot];
            col.reserve(matches.len());
            for &(r, _) in matches {
                col.push(src[r as usize]);
            }
        }
        for &(src_col, slot) in &self.binds {
            let src = rel.col(src_col);
            let col = &mut cols[slot];
            col.reserve(matches.len());
            for &(_, p) in matches {
                col.push(src[p as usize]);
            }
        }
        Batch {
            cols,
            len: matches.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Fact};
    use crate::exec::Projection;
    use crate::instance::Instance;
    use crate::term::Term;
    use crate::Vocabulary;
    use std::collections::BTreeSet;

    fn fact(v: &mut Vocabulary, p: Pred, args: &[&str]) -> Fact {
        Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
    }

    /// All rows of a batch as sorted tuples of slot values.
    fn rows_of(batch: &Batch, slots: usize) -> Vec<Vec<Cst>> {
        let mut out: Vec<Vec<Cst>> = (0..batch.len())
            .map(|r| (0..slots).map(|s| batch.value(s, r)).collect())
            .collect();
        out.sort();
        out
    }

    /// Tuple-executor rows for comparison, same shape as [`rows_of`].
    fn tuple_rows(plan: &Plan, db: &Instance) -> Vec<Vec<Cst>> {
        let mut out = Vec::new();
        let mut stats = ExecStats::default();
        plan.run(db, &[], &mut stats, &mut |row| {
            out.push((0..plan.slots().len()).map(|s| row.slot(s)).collect());
            true
        });
        out.sort();
        out
    }

    fn join_db(v: &mut Vocabulary) -> (Pred, Instance) {
        let e = v.pred("e", 2);
        let mut db = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c"), ("c", "a"), ("b", "d")] {
            db.insert(fact(v, e, &[a, b]));
        }
        (e, db)
    }

    fn join_body(v: &mut Vocabulary, e: Pred) -> Vec<Atom> {
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ]
    }

    #[test]
    fn all_strategies_agree_with_the_tuple_executor() {
        let mut v = Vocabulary::new();
        let (e, db) = join_db(&mut v);
        let body = join_body(&mut v, e);
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        let expect = tuple_rows(&plan, &db);
        let seed = vec![Vec::new()];
        for strategy in [
            JoinStrategy::NestedLoop,
            JoinStrategy::HashJoin,
            JoinStrategy::MergeJoin,
        ] {
            let bp = BatchPlan::with_strategy(&plan, strategy);
            let mut stats = ExecStats::default();
            let out = bp.run(&db, Batch::from_seeds(&plan, &seed), &mut stats);
            assert_eq!(
                rows_of(&out, plan.slots().len()),
                expect,
                "{}",
                strategy.name()
            );
            assert_eq!(stats.batches, 1);
            assert_eq!(stats.rows, out.len() as u64);
        }
    }

    #[test]
    fn seeded_batches_run_the_delta_shape() {
        // Delta execution: pivot vars (X, Y) declared bound, body is the
        // rest of the join; one seed row per delta fact.
        let mut v = Vocabulary::new();
        let (e, db) = join_db(&mut v);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let rest = vec![Atom::new(e, vec![Term::Var(y), Term::Var(z)])];
        let bound: BTreeSet<Var> = [x, y].into_iter().collect();
        let plan = Plan::compile(&rest, &bound, Some(&db));
        let seeds = vec![
            vec![(x, v.cst("a")), (y, v.cst("b"))],
            vec![(x, v.cst("a")), (y, v.cst("c"))],
            vec![(x, v.cst("q")), (y, v.cst("nope"))],
        ];
        for strategy in [
            JoinStrategy::NestedLoop,
            JoinStrategy::HashJoin,
            JoinStrategy::MergeJoin,
        ] {
            let bp = BatchPlan::with_strategy(&plan, strategy);
            let mut stats = ExecStats::default();
            let out = bp.run(&db, Batch::from_seeds(&plan, &seeds), &mut stats);
            // a,b extends with c and d; a,c extends with a; q,nope dies.
            assert_eq!(out.len(), 3, "{}", strategy.name());
            let proj =
                Projection::compile(&[Term::Var(x), Term::Var(y), Term::Var(z)], &plan).unwrap();
            let mut tuples: Vec<Vec<Cst>> = (0..out.len())
                .map(|r| proj.emit_with(&mut |s| out.value(s, r)))
                .collect();
            tuples.sort();
            assert_eq!(
                tuples,
                vec![
                    vec![v.cst("a"), v.cst("b"), v.cst("c")],
                    vec![v.cst("a"), v.cst("b"), v.cst("d")],
                    vec![v.cst("a"), v.cst("c"), v.cst("a")],
                ]
            );
        }
    }

    #[test]
    fn const_filters_become_selection_vectors() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "b"]));
        db.insert(fact(&mut v, p, &["a", "c"]));
        db.insert(fact(&mut v, p, &["d", "b"]));
        let y = v.var("Y");
        let body = vec![Atom::new(p, vec![Term::Cst(v.cst("a")), Term::Var(y)])];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        let bp = BatchPlan::compile(&plan, Some(&db), 1);
        let mut stats = ExecStats::default();
        let out = bp.run(&db, Batch::from_seeds(&plan, &[Vec::new()]), &mut stats);
        assert_eq!(out.len(), 2);
        // The const filter used the index bucket: only the two matching
        // tuples were ever examined.
        assert_eq!(stats.scanned, 2);
    }

    #[test]
    fn repeated_variables_filter_within_the_selection() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "a"]));
        db.insert(fact(&mut v, p, &["a", "b"]));
        db.insert(fact(&mut v, p, &["c", "c"]));
        let x = v.var("X");
        let body = vec![Atom::new(p, vec![Term::Var(x), Term::Var(x)])];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        for strategy in [
            JoinStrategy::NestedLoop,
            JoinStrategy::HashJoin,
            JoinStrategy::MergeJoin,
        ] {
            let bp = BatchPlan::with_strategy(&plan, strategy);
            let mut stats = ExecStats::default();
            let out = bp.run(&db, Batch::from_seeds(&plan, &[Vec::new()]), &mut stats);
            let mut vals: Vec<Cst> = (0..out.len()).map(|r| out.value(0, r)).collect();
            vals.sort();
            assert_eq!(vals, vec![v.cst("a"), v.cst("c")], "{}", strategy.name());
        }
    }

    #[test]
    fn empty_relations_and_empty_batches_short_circuit() {
        let mut v = Vocabulary::new();
        let (e, db) = join_db(&mut v);
        let missing = v.pred("missing", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let body = vec![
            Atom::new(missing, vec![Term::Var(x)]),
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
        ];
        let plan = Plan::compile(&body, &BTreeSet::new(), Some(&db));
        let bp = BatchPlan::compile(&plan, Some(&db), 1);
        let mut stats = ExecStats::default();
        let out = bp.run(&db, Batch::from_seeds(&plan, &[Vec::new()]), &mut stats);
        assert!(out.is_empty());
        assert_eq!(stats.rows, 0);
        // Nothing of `e` was ever scanned: the empty relation killed the
        // batch before the join op ran.
        assert_eq!(stats.scanned, 0);
    }

    #[test]
    fn cost_model_picks_hash_join_for_large_delta_batches() {
        let mut v = Vocabulary::new();
        let f = v.pred("f", 2);
        let mut db = Instance::new();
        // A two-column join where each single-column index bucket is large
        // (~13 rows) but the combined key is nearly unique: per-row bucket
        // probing scans ~13x more pairs than the exact-key hash table.
        for i in 0..200 {
            db.insert(Fact::new(
                f,
                vec![
                    v.cst(&format!("k{}", i % 16)),
                    v.cst(&format!("m{}", i / 16)),
                ],
            ));
        }
        let (x, y) = (v.var("X"), v.var("Y"));
        let body = vec![Atom::new(f, vec![Term::Var(x), Term::Var(y)])];
        let bound: BTreeSet<Var> = [x, y].into_iter().collect();
        let plan = Plan::compile(&body, &bound, Some(&db));
        // Large delta batch: hash join amortizes its build cost.
        let bp = BatchPlan::compile(&plan, Some(&db), 256);
        let join_op = &bp.ops()[0];
        assert!(!join_op.join_keys().is_empty());
        assert_eq!(join_op.strategy, JoinStrategy::HashJoin);
        // Tiny batch: nested-loop probing stays cheapest.
        let small = BatchPlan::compile(&plan, Some(&db), 1);
        assert_eq!(small.ops()[0].strategy, JoinStrategy::NestedLoop);
    }
}
