//! SLD resolution with trail-based backtracking.

use crate::kb::{Clause, KnowledgeBase};
use crate::parse::ParseError;
use crate::term::Term;

/// Search bounds and semantics options.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Maximum number of clause-resolution steps before the search is cut
    /// off (guards against non-terminating programs).
    pub max_steps: usize,
    /// Stop after this many solutions.
    pub max_solutions: usize,
    /// Perform the occurs check during unification. Unlike most Prologs
    /// (which skip it for speed), the default here is `true`: soundness
    /// matters more than raw speed for a reasoning substrate.
    pub occurs_check: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_steps: 1_000_000,
            max_solutions: usize::MAX,
            occurs_check: true,
        }
    }
}

/// One solution: the reified images of the query variables, paired with
/// their names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// `(variable name, bound term)` for every named query variable.
    pub bindings: Vec<(String, Term)>,
}

/// The outcome of a query.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The solutions found, in SLD (depth-first, clause-order) order.
    pub solutions: Vec<Solution>,
    /// `true` iff the whole search tree was explored: no step or solution
    /// bound was hit. If `false`, more solutions may exist.
    pub complete: bool,
    /// Number of resolution steps performed.
    pub steps: usize,
}

/// The built-in predicates of the engine. User clauses for these
/// functor/arity pairs are never consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Builtin {
    /// `true/0` — always succeeds.
    True,
    /// `fail/0` — always fails.
    Fail,
    /// `eq(A, B)` — unifies its arguments.
    Eq,
    /// `neq(A, B)` — succeeds iff the arguments are not unifiable.
    Neq,
    /// `not(G)` — negation as failure: succeeds iff `G` has no proof
    /// under the current bindings. As in standard Prolog, only sound when
    /// `G` is ground at call time.
    Not,
}

/// An SLD resolution engine over a [`KnowledgeBase`].
#[derive(Debug)]
pub struct Solver<'a> {
    kb: &'a KnowledgeBase,
    config: SolverConfig,
    bindings: Vec<Option<Term>>,
    trail: Vec<usize>,
    steps: usize,
    truncated: bool,
    builtins: Vec<(crate::term::Sym, usize, Builtin)>,
}

impl<'a> Solver<'a> {
    /// Creates a solver with the default configuration.
    pub fn new(kb: &'a KnowledgeBase) -> Self {
        Solver::with_config(kb, SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(kb: &'a KnowledgeBase, config: SolverConfig) -> Self {
        let mut builtins = Vec::new();
        for (name, arity, builtin) in [
            ("true", 0, Builtin::True),
            ("fail", 0, Builtin::Fail),
            ("eq", 2, Builtin::Eq),
            ("neq", 2, Builtin::Neq),
            ("not", 1, Builtin::Not),
        ] {
            if let Some(sym) = kb.lookup_sym(name) {
                builtins.push((sym, arity, builtin));
            }
        }
        Solver {
            kb,
            config,
            bindings: Vec::new(),
            trail: Vec::new(),
            steps: 0,
            truncated: false,
            builtins,
        }
    }

    fn builtin_of(&self, functor: crate::term::Sym, arity: usize) -> Option<Builtin> {
        self.builtins
            .iter()
            .find(|&&(f, a, _)| f == functor && a == arity)
            .map(|&(_, _, b)| b)
    }

    /// Solves a conjunction of goals. `var_names` names the query
    /// variables (indexes `0..var_names.len()` in the goals), as returned
    /// by [`KnowledgeBase::parse_query`].
    pub fn solve(&mut self, goals: &[Term], var_names: &[String]) -> SolveResult {
        self.steps = 0;
        self.truncated = false;
        self.trail.clear();
        let num_vars = goals
            .iter()
            .filter_map(Term::max_var)
            .max()
            .map_or(var_names.len(), |m| (m + 1).max(var_names.len()));
        self.bindings = vec![None; num_vars];

        // The goal stack holds goals in reverse: the first goal to solve is
        // on top.
        let mut stack: Vec<Term> = goals.iter().rev().cloned().collect();
        let mut solutions = Vec::new();
        let max_solutions = self.config.max_solutions;
        let complete = self.dfs(&mut stack, &mut |solver| {
            solutions.push(Solution {
                bindings: var_names
                    .iter()
                    .enumerate()
                    .map(|(i, name)| (name.clone(), solver.reify(&Term::Var(i))))
                    .collect(),
            });
            solutions.len() < max_solutions
        });
        SolveResult {
            solutions,
            complete: complete && !self.truncated,
            steps: self.steps,
        }
    }

    /// Depth-first SLD search. `on_solution` is called on every proof of
    /// the whole stack and returns `false` to stop the search. Returns
    /// `true` iff the subtree was fully explored. Restores `stack`,
    /// bindings and trail to their entry state before returning.
    fn dfs(&mut self, stack: &mut Vec<Term>, on_solution: &mut dyn FnMut(&Self) -> bool) -> bool {
        let Some(goal) = stack.pop() else {
            return on_solution(self);
        };
        let resolved = self.walk(goal.clone());
        let mut exhaustive = true;
        if let Term::App(functor, args) = &resolved {
            if let Some(builtin) = self.builtin_of(*functor, args.len()) {
                let cont = self.solve_builtin(builtin, args, stack, on_solution);
                stack.push(goal);
                return cont;
            }
            // The clause slice borrows from `self.kb` (lifetime 'a), which
            // is disjoint from the solver's mutable state.
            let clauses: &'a [Clause] = self.kb.clauses_for(*functor, args.len());
            for clause in clauses {
                if self.steps >= self.config.max_steps {
                    self.truncated = true;
                    exhaustive = false;
                    break;
                }
                self.steps += 1;
                let base = self.bindings.len();
                self.bindings.resize(base + clause.num_vars, None);
                let mark = self.trail.len();
                let head = clause.head.shift_vars(base);
                if self.unify(&resolved, &head) {
                    let depth = stack.len();
                    for g in clause.body.iter().rev() {
                        stack.push(g.shift_vars(base));
                    }
                    let cont = self.dfs(stack, on_solution);
                    stack.truncate(depth);
                    if !cont {
                        self.undo(mark);
                        self.bindings.truncate(base);
                        stack.push(goal);
                        return false;
                    }
                }
                self.undo(mark);
                self.bindings.truncate(base);
            }
        }
        // An unbound-variable goal fails silently (no clauses can match);
        // real Prologs raise an instantiation error here.
        stack.push(goal);
        exhaustive
    }

    /// Handles one built-in goal. The goal itself is already popped from
    /// `stack`; the caller restores it.
    fn solve_builtin(
        &mut self,
        builtin: Builtin,
        args: &[Term],
        stack: &mut Vec<Term>,
        on_solution: &mut dyn FnMut(&Self) -> bool,
    ) -> bool {
        self.steps += 1;
        match builtin {
            Builtin::True => self.dfs(stack, on_solution),
            Builtin::Fail => true,
            Builtin::Eq => {
                let mark = self.trail.len();
                let cont = if self.unify(&args[0], &args[1]) {
                    self.dfs(stack, on_solution)
                } else {
                    true
                };
                self.undo(mark);
                cont
            }
            Builtin::Neq => {
                let mark = self.trail.len();
                let unifiable = self.unify(&args[0], &args[1]);
                self.undo(mark);
                if unifiable {
                    true // \= fails: exhausted with no solutions
                } else {
                    self.dfs(stack, on_solution)
                }
            }
            Builtin::Not => {
                let mark = self.trail.len();
                let mut proved = false;
                let mut sub_stack = vec![args[0].clone()];
                let exhaustive = self.dfs(&mut sub_stack, &mut |_| {
                    proved = true;
                    false // stop at the first proof
                });
                self.undo(mark);
                if proved {
                    true // goal provable: not(G) fails, branch exhausted
                } else if !exhaustive {
                    // The sub-proof was cut off by the step budget: the
                    // answer is unreliable, so fail conservatively (the
                    // overall result is already marked truncated).
                    true
                } else {
                    self.dfs(stack, on_solution)
                }
            }
        }
    }

    /// Follows variable bindings at the top level only.
    fn walk(&self, mut t: Term) -> Term {
        while let Term::Var(v) = t {
            match &self.bindings[v] {
                Some(bound) => t = bound.clone(),
                None => break,
            }
        }
        t
    }

    /// Deeply resolves a term.
    fn reify(&self, t: &Term) -> Term {
        match self.walk(t.clone()) {
            Term::Var(v) => Term::Var(v),
            Term::App(f, args) => Term::App(f, args.iter().map(|a| self.reify(a)).collect()),
        }
    }

    fn occurs(&self, v: usize, t: &Term) -> bool {
        match self.walk(t.clone()) {
            Term::Var(u) => u == v,
            Term::App(_, args) => args.iter().any(|a| self.occurs(v, a)),
        }
    }

    fn bind(&mut self, v: usize, t: Term) {
        debug_assert!(self.bindings[v].is_none());
        self.bindings[v] = Some(t);
        self.trail.push(v);
    }

    fn undo(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail length checked");
            self.bindings[v] = None;
        }
    }

    /// Unifies two terms under the current bindings. Partial bindings made
    /// by a failing unification are the caller's responsibility to undo
    /// (via the trail mark taken before the attempt).
    fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let a = self.walk(a.clone());
        let b = self.walk(b.clone());
        match (a, b) {
            (Term::Var(x), Term::Var(y)) => {
                if x != y {
                    self.bind(x, Term::Var(y));
                }
                true
            }
            (Term::Var(x), t) | (t, Term::Var(x)) => {
                if self.config.occurs_check && self.occurs(x, &t) {
                    return false;
                }
                self.bind(x, t);
                true
            }
            (Term::App(f, fa), Term::App(g, ga)) => {
                f == g && fa.len() == ga.len() && fa.iter().zip(&ga).all(|(x, y)| self.unify(x, y))
            }
        }
    }
}

impl KnowledgeBase {
    /// Parses and solves a query with the default configuration.
    ///
    /// Convenience wrapper around [`KnowledgeBase::parse_query`] and
    /// [`Solver::solve`].
    pub fn query(&mut self, src: &str) -> Result<SolveResult, ParseError> {
        self.query_with(src, SolverConfig::default())
    }

    /// Parses and solves a query with an explicit configuration.
    pub fn query_with(
        &mut self,
        src: &str,
        config: SolverConfig,
    ) -> Result<SolveResult, ParseError> {
        let (goals, var_names) = self.parse_query(src)?;
        Ok(Solver::with_config(self, config).solve(&goals, &var_names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.consult(
            "parent(tom, bob).
             parent(tom, liz).
             parent(bob, ann).
             parent(bob, pat).
             grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
             ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).",
        )
        .unwrap();
        kb
    }

    #[test]
    fn facts_are_solvable() {
        let mut kb = family_kb();
        let r = kb.query("parent(tom, bob).").unwrap();
        assert_eq!(r.solutions.len(), 1);
        assert!(r.complete);
        let r = kb.query("parent(bob, tom).").unwrap();
        assert!(r.solutions.is_empty());
        assert!(r.complete);
    }

    #[test]
    fn variables_enumerate_all_matches() {
        let mut kb = family_kb();
        let r = kb.query("parent(tom, X).").unwrap();
        let values: Vec<String> = r
            .solutions
            .iter()
            .map(|s| kb.render(&s.bindings[0].1, &[]))
            .collect();
        assert_eq!(values, vec!["bob", "liz"]);
    }

    #[test]
    fn conjunction_and_rules() {
        let mut kb = family_kb();
        let r = kb.query("grandparent(tom, W).").unwrap();
        assert_eq!(r.solutions.len(), 2);
        let r = kb.query("ancestor(tom, pat).").unwrap();
        assert_eq!(r.solutions.len(), 1);
    }

    #[test]
    fn append_splits() {
        let mut kb = KnowledgeBase::new();
        kb.consult(
            "append(nil, Y, Y).
             append(cons(H, T), Y, cons(H, Z)) :- append(T, Y, Z).",
        )
        .unwrap();
        let r = kb
            .query("append(X, Y, cons(a, cons(b, cons(c, nil)))).")
            .unwrap();
        assert_eq!(r.solutions.len(), 4);
        assert!(r.complete);
        // First solution is X = nil, Y = whole list.
        assert_eq!(kb.render(&r.solutions[0].bindings[0].1, &[]), "nil");
    }

    #[test]
    fn step_limit_cuts_infinite_search() {
        let mut kb = KnowledgeBase::new();
        kb.consult("loop(X) :- loop(X).").unwrap();
        let r = kb
            .query_with(
                "loop(a).",
                SolverConfig {
                    max_steps: 100,
                    ..SolverConfig::default()
                },
            )
            .unwrap();
        assert!(r.solutions.is_empty());
        assert!(!r.complete);
        assert!(r.steps >= 100);
    }

    #[test]
    fn max_solutions_stops_early() {
        let mut kb = family_kb();
        let r = kb
            .query_with(
                "parent(X, Y).",
                SolverConfig {
                    max_solutions: 2,
                    ..SolverConfig::default()
                },
            )
            .unwrap();
        assert_eq!(r.solutions.len(), 2);
        assert!(!r.complete);
    }

    #[test]
    fn occurs_check_rejects_cyclic_terms() {
        let mut kb = KnowledgeBase::new();
        kb.consult("eq(X, X).").unwrap();
        // X = f(X) must fail under the occurs check (with it disabled the
        // binding would become cyclic and reification would diverge, which
        // is exactly the classical Prolog unsoundness the check prevents).
        let r = kb.query("eq(X, f(X)).").unwrap();
        assert!(r.solutions.is_empty());
        assert!(r.complete);
        // Ground unification is unaffected by the occurs-check setting.
        let r = kb
            .query_with(
                "eq(a, a).",
                SolverConfig {
                    occurs_check: false,
                    ..SolverConfig::default()
                },
            )
            .unwrap();
        assert_eq!(r.solutions.len(), 1);
    }

    #[test]
    fn backtracking_restores_bindings() {
        let mut kb = KnowledgeBase::new();
        kb.consult(
            "p(a). p(b).
             q(b).
             both(X) :- p(X), q(X).",
        )
        .unwrap();
        // p(a) is tried first, q(a) fails, backtracks to p(b).
        let r = kb.query("both(X).").unwrap();
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(kb.render(&r.solutions[0].bindings[0].1, &[]), "b");
    }

    #[test]
    fn solutions_respect_clause_order() {
        let mut kb = KnowledgeBase::new();
        kb.consult("n(zero). n(s(X)) :- n(X).").unwrap();
        let r = kb
            .query_with(
                "n(X).",
                SolverConfig {
                    max_solutions: 3,
                    ..SolverConfig::default()
                },
            )
            .unwrap();
        let rendered: Vec<String> = r
            .solutions
            .iter()
            .map(|s| kb.render(&s.bindings[0].1, &[]))
            .collect();
        assert_eq!(rendered, vec!["zero", "s(zero)", "s(s(zero))"]);
    }

    #[test]
    fn builtin_true_and_fail() {
        let mut kb = KnowledgeBase::new();
        kb.consult("p(a) :- true. q(a) :- fail.").unwrap();
        assert_eq!(kb.query("p(X).").unwrap().solutions.len(), 1);
        assert_eq!(kb.query("q(X).").unwrap().solutions.len(), 0);
        assert!(kb.query("q(X).").unwrap().complete);
    }

    #[test]
    fn builtin_eq_unifies() {
        let mut kb = KnowledgeBase::new();
        kb.consult("p(b). same(X, Y) :- eq(X, Y).").unwrap();
        let r = kb.query("eq(X, f(a)), eq(X, Y).").unwrap();
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(kb.render(&r.solutions[0].bindings[1].1, &[]), "f(a)");
        // eq propagates through user rules too.
        let r = kb.query("same(c, c).").unwrap();
        assert_eq!(r.solutions.len(), 1);
        let r = kb.query("same(c, d).").unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn builtin_neq_rejects_unifiable_terms() {
        let mut kb = KnowledgeBase::new();
        kb.consult("p(a). p(b).").unwrap();
        // Pairs of distinct p-atoms.
        let r = kb.query("p(X), p(Y), neq(X, Y).").unwrap();
        assert_eq!(r.solutions.len(), 2);
        // neq on an unbound variable fails (everything unifies with it).
        let r = kb.query("neq(X, a).").unwrap();
        assert!(r.solutions.is_empty());
        // neq leaves no bindings behind.
        let r = kb.query("neq(f(X), g(X)), p(X).").unwrap();
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn negation_as_failure() {
        let mut kb = KnowledgeBase::new();
        kb.consult(
            "bird(tweety). bird(polly).
             penguin(polly).
             flies(X) :- bird(X), not(penguin(X)).",
        )
        .unwrap();
        let r = kb.query("flies(X).").unwrap();
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(kb.render(&r.solutions[0].bindings[0].1, &[]), "tweety");
        assert!(r.complete);
        // Double negation: not(not(bird(tweety))).
        let r = kb.query("not(not(bird(tweety))).").unwrap();
        assert_eq!(r.solutions.len(), 1);
        let r = kb.query("not(bird(tweety)).").unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn naf_leaves_no_bindings() {
        let mut kb = KnowledgeBase::new();
        kb.consult("p(a). q(b).").unwrap();
        // The failed sub-proof of q(X) must not leave X bound.
        let r = kb.query("not(q(a)), p(X).").unwrap();
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(kb.render(&r.solutions[0].bindings[0].1, &[]), "a");
    }

    #[test]
    fn truncated_naf_is_conservative() {
        let mut kb = KnowledgeBase::new();
        kb.consult("loop(X) :- loop(X). p(a).").unwrap();
        let r = kb
            .query_with(
                "not(loop(z)), p(X).",
                SolverConfig {
                    max_steps: 50,
                    ..SolverConfig::default()
                },
            )
            .unwrap();
        // The inner proof attempt diverges; the solver must not claim the
        // negation holds, and must flag the search as incomplete.
        assert!(r.solutions.is_empty());
        assert!(!r.complete);
    }

    #[test]
    fn unbound_goal_fails() {
        let mut kb = family_kb();
        // A bare variable goal cannot be resolved.
        let r = kb.query("X.").unwrap();
        assert!(r.solutions.is_empty());
        assert!(r.complete);
    }

    #[test]
    fn shared_variables_across_goals() {
        let mut kb = family_kb();
        let r = kb.query("parent(tom, X), parent(X, ann).").unwrap();
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(kb.render(&r.solutions[0].bindings[0].1, &[]), "bob");
    }
}
