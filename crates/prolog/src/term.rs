//! First-order terms with compound structure.

/// An interned functor or atom name (see [`crate::KnowledgeBase`]).
pub type Sym = u32;

/// A first-order term.
///
/// Constants are applications with zero arguments (`App(sym, [])`), as in
/// most Prolog implementations. Variables are identified by clause-local or
/// machine-global indexes; renaming apart is done by offsetting.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A logic variable.
    Var(usize),
    /// A functor application `f(t₁, …, tₙ)`; `n = 0` is an atom.
    App(Sym, Vec<Term>),
}

impl Term {
    /// An atom (zero-argument application).
    pub fn atom(sym: Sym) -> Term {
        Term::App(sym, Vec::new())
    }

    /// `true` iff the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// `true` iff the variable `v` occurs in the term.
    pub fn mentions(&self, v: usize) -> bool {
        match self {
            Term::Var(u) => *u == v,
            Term::App(_, args) => args.iter().any(|t| t.mentions(v)),
        }
    }

    /// The largest variable index occurring in the term, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Term::Var(v) => Some(*v),
            Term::App(_, args) => args.iter().filter_map(Term::max_var).max(),
        }
    }

    /// Shifts every variable index by `offset` (renaming apart).
    pub fn shift_vars(&self, offset: usize) -> Term {
        match self {
            Term::Var(v) => Term::Var(v + offset),
            Term::App(f, args) => {
                Term::App(*f, args.iter().map(|t| t.shift_vars(offset)).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groundness() {
        let f = 0;
        let ground = Term::App(f, vec![Term::atom(1), Term::atom(2)]);
        let open = Term::App(f, vec![Term::Var(0), Term::atom(2)]);
        assert!(ground.is_ground());
        assert!(!open.is_ground());
    }

    #[test]
    fn mentions_searches_deep() {
        let t = Term::App(0, vec![Term::App(1, vec![Term::Var(3)])]);
        assert!(t.mentions(3));
        assert!(!t.mentions(2));
    }

    #[test]
    fn shift_and_max_var() {
        let t = Term::App(0, vec![Term::Var(1), Term::App(1, vec![Term::Var(4)])]);
        assert_eq!(t.max_var(), Some(4));
        let shifted = t.shift_vars(10);
        assert_eq!(shifted.max_var(), Some(14));
        assert_eq!(Term::atom(0).max_var(), None);
    }
}
