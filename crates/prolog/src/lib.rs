//! A mini Prolog: SLD resolution over first-order terms.
//!
//! The paper's Section 5 implements the specialization algorithms by
//! *backward rule application* in SWI-Prolog, because specialization is
//! driven by unification. This crate is the from-scratch analogue of that
//! substrate: a small logic-programming engine with
//!
//! * first-order **terms** with compound structure ([`Term`]), parsed from
//!   a conventional syntax (`append(cons(H,T), Y, cons(H,Z))`);
//! * a **knowledge base** of Horn clauses ([`KnowledgeBase`]), indexed by
//!   functor/arity;
//! * **SLD resolution** with trail-based backtracking, optional occurs
//!   check, and step bounds ([`Solver`], [`SolveResult`]).
//!
//! The completeness reasoner itself unifies flat relational atoms and uses
//! `magik-unify` directly; this engine demonstrates (and tests) the same
//! search discipline on general terms, and the `prolog_spec` integration
//! test of the umbrella crate runs the paper's specialization example on
//! it end to end.
//!
//! # Example
//!
//! ```
//! use magik_prolog::KnowledgeBase;
//!
//! let mut kb = KnowledgeBase::new();
//! kb.consult(
//!     "append(nil, Y, Y).
//!      append(cons(H, T), Y, cons(H, Z)) :- append(T, Y, Z).",
//! ).unwrap();
//!
//! let result = kb.query("append(X, Y, cons(a, cons(b, nil))).").unwrap();
//! assert_eq!(result.solutions.len(), 3); // all splits of [a, b]
//! assert!(result.complete);
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod kb;
mod parse;
mod solve;
mod term;

pub use kb::{Clause, KnowledgeBase};
pub use parse::ParseError;
pub use solve::{Solution, SolveResult, Solver, SolverConfig};
pub use term::{Sym, Term};
