//! The knowledge base: interned names and indexed Horn clauses.

use std::collections::HashMap;
use std::fmt;

use crate::parse::{parse_program, parse_query, ParseError};
use crate::term::{Sym, Term};

/// A Horn clause `head :- body`. Facts have an empty body.
///
/// Variables are clause-local indexes `0..num_vars`; the solver renames
/// them apart by shifting when the clause is used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// The head term (always an application).
    pub head: Term,
    /// The body goals.
    pub body: Vec<Term>,
    /// Number of distinct variables in the clause.
    pub num_vars: usize,
}

impl Clause {
    /// Creates a clause, computing `num_vars` from the terms.
    pub fn new(head: Term, body: Vec<Term>) -> Self {
        let num_vars = std::iter::once(&head)
            .chain(&body)
            .filter_map(Term::max_var)
            .max()
            .map_or(0, |m| m + 1);
        Clause {
            head,
            body,
            num_vars,
        }
    }
}

/// A Prolog knowledge base: an interner for functor names plus clauses
/// indexed by the functor/arity of their head.
#[derive(Debug, Default, Clone)]
pub struct KnowledgeBase {
    names: Vec<String>,
    by_name: HashMap<String, Sym>,
    clauses: HashMap<(Sym, usize), Vec<Clause>>,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a functor or atom name.
    pub fn sym(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Sym::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// The spelling of an interned name.
    pub fn name(&self, s: Sym) -> &str {
        &self.names[s as usize]
    }

    /// Looks up an interned name without inserting.
    pub fn lookup_sym(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// Adds a clause. Panics if the head is a variable.
    pub fn add_clause(&mut self, clause: Clause) {
        let Term::App(f, args) = &clause.head else {
            panic!("clause head must be an application");
        };
        self.clauses
            .entry((*f, args.len()))
            .or_default()
            .push(clause);
    }

    /// The clauses whose head has the given functor and arity.
    pub fn clauses_for(&self, functor: Sym, arity: usize) -> &[Clause] {
        self.clauses
            .get(&(functor, arity))
            .map_or(&[], Vec::as_slice)
    }

    /// Total number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.values().map(Vec::len).sum()
    }

    /// `true` iff no clause has been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parses a program (a sequence of clauses in conventional syntax) and
    /// adds every clause.
    ///
    /// ```
    /// # use magik_prolog::KnowledgeBase;
    /// let mut kb = KnowledgeBase::new();
    /// kb.consult("parent(tom, bob). grandparent(X, Z) :- parent(X, Y), parent(Y, Z).").unwrap();
    /// assert_eq!(kb.len(), 2);
    /// ```
    pub fn consult(&mut self, src: &str) -> Result<(), ParseError> {
        for clause in parse_program(self, src)? {
            self.add_clause(clause);
        }
        Ok(())
    }

    /// Parses a query: a conjunction of goals terminated by `.`, returning
    /// the goals and the names of the query variables (indexed by variable
    /// id).
    pub fn parse_query(&mut self, src: &str) -> Result<(Vec<Term>, Vec<String>), ParseError> {
        parse_query(self, src)
    }

    /// Renders a term using the knowledge base's interner. Unbound
    /// variables are shown as `_N`; `var_names` supplies nicer names for
    /// low indexes (typically the query variables).
    pub fn render(&self, t: &Term, var_names: &[String]) -> String {
        let mut out = String::new();
        self.render_into(t, var_names, &mut out)
            .expect("writing to String cannot fail");
        out
    }

    fn render_into(&self, t: &Term, var_names: &[String], out: &mut String) -> fmt::Result {
        use fmt::Write;
        // Re-sugar cons/nil chains into list notation.
        if let Some((items, tail)) = self.as_list(t) {
            if !(items.is_empty() && tail.is_some()) {
                write!(out, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    self.render_into(item, var_names, out)?;
                }
                if let Some(tail) = tail {
                    write!(out, " | ")?;
                    self.render_into(tail, var_names, out)?;
                }
                write!(out, "]")?;
                return Ok(());
            }
        }
        match t {
            Term::Var(v) => match var_names.get(*v) {
                Some(name) => write!(out, "{name}"),
                None => write!(out, "_{v}"),
            },
            Term::App(f, args) => {
                write!(out, "{}", self.name(*f))?;
                if !args.is_empty() {
                    write!(out, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(out, ", ")?;
                        }
                        self.render_into(a, var_names, out)?;
                    }
                    write!(out, ")")?;
                }
                Ok(())
            }
        }
    }

    /// If `t` is a `cons`/`nil` chain, returns its item prefix and the
    /// non-`nil` tail (if improper). Returns `None` for non-list terms.
    fn as_list<'t>(&self, t: &'t Term) -> Option<(Vec<&'t Term>, Option<&'t Term>)> {
        let cons = self.by_name.get("cons").copied()?;
        let nil = self.by_name.get("nil").copied();
        let mut items = Vec::new();
        let mut current = t;
        loop {
            match current {
                Term::App(f, args) if *f == cons && args.len() == 2 => {
                    items.push(&args[0]);
                    current = &args[1];
                }
                Term::App(f, args) if Some(*f) == nil && args.is_empty() => {
                    return (!items.is_empty()).then_some((items, None));
                }
                other => {
                    return (!items.is_empty()).then_some((items, Some(other)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_num_vars_is_computed() {
        let c = Clause::new(
            Term::App(0, vec![Term::Var(0), Term::Var(2)]),
            vec![Term::App(1, vec![Term::Var(1)])],
        );
        assert_eq!(c.num_vars, 3);
        let fact = Clause::new(Term::atom(0), vec![]);
        assert_eq!(fact.num_vars, 0);
    }

    #[test]
    fn clauses_are_indexed_by_functor_and_arity() {
        let mut kb = KnowledgeBase::new();
        kb.consult("p(a). p(b). p(a, b). q(c).").unwrap();
        let p = kb.sym("p");
        let q = kb.sym("q");
        assert_eq!(kb.clauses_for(p, 1).len(), 2);
        assert_eq!(kb.clauses_for(p, 2).len(), 1);
        assert_eq!(kb.clauses_for(q, 1).len(), 1);
        assert_eq!(kb.clauses_for(q, 2).len(), 0);
        assert_eq!(kb.len(), 4);
    }

    #[test]
    fn render_shows_vars_and_structure() {
        let mut kb = KnowledgeBase::new();
        let f = kb.sym("f");
        let a = kb.sym("a");
        let t = Term::App(f, vec![Term::Var(0), Term::atom(a), Term::Var(7)]);
        assert_eq!(kb.render(&t, &["X".to_owned()]), "f(X, a, _7)");
    }
}
