//! A small recursive-descent parser for conventional Prolog syntax.
//!
//! Supported: facts `p(a, b).`, rules `h :- g1, g2.`, atoms and compound
//! terms (lowercase functors), variables (leading uppercase or `_`),
//! list sugar (`[]`, `[a, b]`, `[H | T]` — desugared to `nil`/`cons`),
//! `%`-to-end-of-line comments. Not supported (not needed by the engine):
//! operators, numbers, strings, cut.

use std::collections::HashMap;
use std::fmt;

use crate::kb::{Clause, KnowledgeBase};
use crate::term::Term;

/// A parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    kb: &'a mut KnowledgeBase,
    /// Variable name → index, scoped to one clause or query.
    vars: HashMap<String, usize>,
    var_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(kb: &'a mut KnowledgeBase, src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            kb,
            vars: HashMap::new(),
            var_names: Vec::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", c as char)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// `[t1, t2 | Tail]` desugared onto `cons`/`nil`.
    fn list(&mut self) -> Result<Term, ParseError> {
        let nil = self.kb.sym("nil");
        let cons = self.kb.sym("cons");
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Term::atom(nil));
        }
        let mut items = vec![self.term()?];
        loop {
            self.skip_ws();
            if self.eat(b',') {
                items.push(self.term()?);
            } else if self.eat(b'|') {
                let tail = self.term()?;
                self.skip_ws();
                self.expect(b']')?;
                return Ok(items
                    .into_iter()
                    .rev()
                    .fold(tail, |acc, h| Term::App(cons, vec![h, acc])));
            } else {
                self.expect(b']')?;
                return Ok(items
                    .into_iter()
                    .rev()
                    .fold(Term::atom(nil), |acc, h| Term::App(cons, vec![h, acc])));
            }
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        let Some(c) = self.peek() else {
            return Err(self.error("unexpected end of input"));
        };
        if c == b'[' {
            self.pos += 1;
            self.list()
        } else if c.is_ascii_uppercase() || c == b'_' {
            let name = self.ident()?;
            // `_` alone is an anonymous variable: always fresh.
            let idx = if name == "_" {
                let idx = self.var_names.len();
                self.var_names.push(format!("_G{idx}"));
                idx
            } else if let Some(&idx) = self.vars.get(&name) {
                idx
            } else {
                let idx = self.var_names.len();
                self.vars.insert(name.clone(), idx);
                self.var_names.push(name);
                idx
            };
            Ok(Term::Var(idx))
        } else if c.is_ascii_lowercase() {
            let name = self.ident()?;
            let sym = self.kb.sym(&name);
            self.skip_ws();
            if self.eat(b'(') {
                let mut args = Vec::new();
                loop {
                    args.push(self.term()?);
                    self.skip_ws();
                    if self.eat(b',') {
                        continue;
                    }
                    self.expect(b')')?;
                    break;
                }
                Ok(Term::App(sym, args))
            } else {
                Ok(Term::atom(sym))
            }
        } else {
            Err(self.error(format!("unexpected character '{}'", c as char)))
        }
    }

    /// `goal (, goal)*`
    fn goals(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut out = vec![self.term()?];
        loop {
            self.skip_ws();
            if self.eat(b',') {
                out.push(self.term()?);
            } else {
                return Ok(out);
            }
        }
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        self.vars.clear();
        self.var_names.clear();
        let head = self.term()?;
        if matches!(head, Term::Var(_)) {
            return Err(self.error("clause head cannot be a variable"));
        }
        self.skip_ws();
        let body = if self.eat(b':') {
            self.expect(b'-')?;
            self.goals()?
        } else {
            Vec::new()
        };
        self.skip_ws();
        self.expect(b'.')?;
        Ok(Clause::new(head, body))
    }
}

/// Parses a whole program: a sequence of clauses.
pub(crate) fn parse_program(kb: &mut KnowledgeBase, src: &str) -> Result<Vec<Clause>, ParseError> {
    let mut p = Parser::new(kb, src);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.peek().is_none() {
            return Ok(out);
        }
        out.push(p.clause()?);
    }
}

/// Parses a query: goals terminated by `.`. Returns the goals and the query
/// variable names (indexed by variable id).
pub(crate) fn parse_query(
    kb: &mut KnowledgeBase,
    src: &str,
) -> Result<(Vec<Term>, Vec<String>), ParseError> {
    let mut p = Parser::new(kb, src);
    let goals = p.goals()?;
    p.skip_ws();
    p.expect(b'.')?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.error("trailing input after query"));
    }
    Ok((goals, p.var_names))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_and_rules() {
        let mut kb = KnowledgeBase::new();
        let clauses = parse_program(&mut kb, "p(a).\n% a comment\nq(X, Y) :- p(X), p(Y).").unwrap();
        assert_eq!(clauses.len(), 2);
        assert!(clauses[0].body.is_empty());
        assert_eq!(clauses[1].body.len(), 2);
        assert_eq!(clauses[1].num_vars, 2);
    }

    #[test]
    fn variables_are_scoped_per_clause() {
        let mut kb = KnowledgeBase::new();
        let clauses = parse_program(&mut kb, "p(X) :- q(X). r(X) :- s(X).").unwrap();
        // Both clauses use variable index 0 independently.
        assert_eq!(clauses[0].num_vars, 1);
        assert_eq!(clauses[1].num_vars, 1);
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let mut kb = KnowledgeBase::new();
        let clauses = parse_program(&mut kb, "p(a) :- q(_, _).").unwrap();
        assert_eq!(clauses[0].num_vars, 2);
    }

    #[test]
    fn nested_compounds() {
        let mut kb = KnowledgeBase::new();
        let (goals, vars) = parse_query(&mut kb, "append(cons(a, nil), Y, Z).").unwrap();
        assert_eq!(goals.len(), 1);
        assert_eq!(vars, vec!["Y".to_owned(), "Z".to_owned()]);
        let Term::App(_, args) = &goals[0] else {
            panic!()
        };
        assert!(matches!(&args[0], Term::App(_, inner) if inner.len() == 2));
    }

    #[test]
    fn list_sugar_desugars_to_cons_nil() {
        let mut kb = KnowledgeBase::new();
        let (goals, _) = parse_query(&mut kb, "p([]).").unwrap();
        let nil = kb.sym("nil");
        let Term::App(_, args) = &goals[0] else {
            panic!()
        };
        assert_eq!(args[0], Term::atom(nil));

        let (goals, _) = parse_query(&mut kb, "p([a, b]).").unwrap();
        let cons = kb.sym("cons");
        let a = kb.sym("a");
        let b = kb.sym("b");
        let Term::App(_, args) = &goals[0] else {
            panic!()
        };
        assert_eq!(
            args[0],
            Term::App(
                cons,
                vec![
                    Term::atom(a),
                    Term::App(cons, vec![Term::atom(b), Term::atom(nil)])
                ]
            )
        );

        // Open tail.
        let (goals, vars) = parse_query(&mut kb, "p([H | T]).").unwrap();
        assert_eq!(vars, vec!["H".to_owned(), "T".to_owned()]);
        let Term::App(_, args) = &goals[0] else {
            panic!()
        };
        assert_eq!(args[0], Term::App(cons, vec![Term::Var(0), Term::Var(1)]));

        // Nested lists.
        let (goals, _) = parse_query(&mut kb, "p([[a], []]).").unwrap();
        assert_eq!(goals.len(), 1);

        // Malformed lists.
        assert!(parse_query(&mut kb, "p([a,).").is_err());
        assert!(parse_query(&mut kb, "p([a | b, c]).").is_err());
    }

    #[test]
    fn rejects_variable_heads_and_garbage() {
        let mut kb = KnowledgeBase::new();
        assert!(parse_program(&mut kb, "X :- p(a).").is_err());
        assert!(parse_program(&mut kb, "p(a)").is_err()); // missing dot
        assert!(parse_query(&mut kb, "p(a). extra").is_err());
        assert!(parse_query(&mut kb, "p(,).").is_err());
    }
}
