//! Property-based tests for the SLD engine, using executable list theory:
//! the engine itself is the oracle for classical identities of `append`
//! and `reverse` over randomly generated lists.

use proptest::prelude::*;

use magik_prolog::{KnowledgeBase, SolverConfig, Term};

const LIST_THEORY: &str = "
    append(nil, Y, Y).
    append(cons(H, T), Y, cons(H, Z)) :- append(T, Y, Z).

    reverse(nil, nil).
    reverse(cons(H, T), R) :- reverse(T, RT), append(RT, cons(H, nil), R).

    member(X, cons(X, _)).
    member(X, cons(_, T)) :- member(X, T).

    length(nil, zero).
    length(cons(_, T), s(N)) :- length(T, N).
";

fn kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.consult(LIST_THEORY).unwrap();
    kb
}

/// Renders a `Vec<u8>` as a ground cons-list term.
fn list_term(items: &[u8]) -> String {
    let mut out = "nil".to_owned();
    for &i in items.iter().rev() {
        out = format!("cons(e{i}, {out})");
    }
    out
}

/// The sugared rendering the engine produces for the same list.
fn sugared(items: &[u8]) -> String {
    if items.is_empty() {
        "nil".to_owned()
    } else {
        format!(
            "[{}]",
            items
                .iter()
                .map(|i| format!("e{i}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

fn solve_one(kb: &mut KnowledgeBase, goal: &str) -> Option<Vec<(String, Term)>> {
    let r = kb
        .query_with(
            goal,
            SolverConfig {
                max_solutions: 1,
                ..SolverConfig::default()
            },
        )
        .unwrap();
    r.solutions.into_iter().next().map(|s| s.bindings)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// append is total and deterministic on ground inputs, and the result
    /// concatenates.
    #[test]
    fn append_concatenates(xs in proptest::collection::vec(0..5u8, 0..6), ys in proptest::collection::vec(0..5u8, 0..6)) {
        let mut kb = kb();
        let goal = format!("append({}, {}, Z).", list_term(&xs), list_term(&ys));
        let bindings = solve_one(&mut kb, &goal).expect("append succeeds");
        let z = kb.render(&bindings[0].1, &[]);
        let expected: Vec<u8> = xs.iter().chain(&ys).copied().collect();
        prop_assert_eq!(z, sugared(&expected));
    }

    /// append(X, Y, L) enumerates exactly |L| + 1 splits.
    #[test]
    fn append_enumerates_all_splits(l in proptest::collection::vec(0..5u8, 0..6)) {
        let mut kb = kb();
        let goal = format!("append(X, Y, {}).", list_term(&l));
        let r = kb.query(&goal).unwrap();
        prop_assert!(r.complete);
        prop_assert_eq!(r.solutions.len(), l.len() + 1);
        // Each split re-concatenates to l.
        for s in &r.solutions {
            let x = kb.render(&s.bindings[0].1, &[]);
            let y = kb.render(&s.bindings[1].1, &[]);
            let recheck = format!("append({x}, {y}, {}).", list_term(&l));
            prop_assert!(solve_one(&mut kb, &recheck).is_some());
        }
    }

    /// reverse is an involution.
    #[test]
    fn reverse_is_involutive(xs in proptest::collection::vec(0..5u8, 0..6)) {
        let mut kb = kb();
        let goal = format!("reverse({}, R).", list_term(&xs));
        let bindings = solve_one(&mut kb, &goal).expect("reverse succeeds");
        let reversed_term = kb.render(&bindings[0].1, &[]);
        let mut expected = xs.clone();
        expected.reverse();
        prop_assert_eq!(&reversed_term, &sugared(&expected));
        // The sugared rendering parses back (list syntax round-trip).
        let back = format!("reverse({reversed_term}, R2).");
        let bindings = solve_one(&mut kb, &back).expect("reverse back succeeds");
        prop_assert_eq!(kb.render(&bindings[0].1, &[]), sugared(&xs));
    }

    /// member holds exactly for the elements of the list, and NAF gives
    /// the complement.
    #[test]
    fn member_and_its_negation(xs in proptest::collection::vec(0..5u8, 0..6), probe in 0..5u8) {
        let mut kb = kb();
        let goal = format!("member(e{probe}, {}).", list_term(&xs));
        let holds = solve_one(&mut kb, &goal).is_some();
        prop_assert_eq!(holds, xs.contains(&probe));
        let naf = format!("not(member(e{probe}, {})).", list_term(&xs));
        let negated = solve_one(&mut kb, &naf).is_some();
        prop_assert_eq!(negated, !xs.contains(&probe));
    }

    /// length agrees with the Rust-side length (as Peano numerals).
    #[test]
    fn length_matches(xs in proptest::collection::vec(0..5u8, 0..8)) {
        let mut kb = kb();
        let goal = format!("length({}, N).", list_term(&xs));
        let bindings = solve_one(&mut kb, &goal).expect("length succeeds");
        let mut expected = "zero".to_owned();
        for _ in 0..xs.len() {
            expected = format!("s({expected})");
        }
        prop_assert_eq!(kb.render(&bindings[0].1, &[]), expected);
    }
}
