//! Property-based tests for unification.

use proptest::prelude::*;

use magik_relalg::{Atom, Term, Vocabulary};
use magik_unify::{mgu_atoms, mgu_pairs, Unifier};

#[derive(Debug, Clone, Copy)]
enum ATerm {
    Var(u8),
    Cst(u8),
}

fn aterm() -> impl Strategy<Value = ATerm> {
    prop_oneof![(0..6u8).prop_map(ATerm::Var), (0..3u8).prop_map(ATerm::Cst)]
}

fn materialize(v: &mut Vocabulary, t: ATerm) -> Term {
    match t {
        ATerm::Var(i) => Term::Var(v.var(&format!("X{i}"))),
        ATerm::Cst(i) => Term::Cst(v.cst(&format!("c{i}"))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// An MGU actually unifies: σa = σb for every input pair.
    #[test]
    fn mgu_unifies_all_pairs(pairs in proptest::collection::vec((aterm(), aterm()), 0..8)) {
        let mut v = Vocabulary::new();
        let pairs: Vec<(Term, Term)> = pairs
            .into_iter()
            .map(|(a, b)| (materialize(&mut v, a), materialize(&mut v, b)))
            .collect();
        if let Some(mgu) = mgu_pairs(&pairs) {
            for (a, b) in pairs {
                prop_assert_eq!(mgu.apply_term(a), mgu.apply_term(b));
            }
        }
    }

    /// MGUs are idempotent substitutions.
    #[test]
    fn mgu_is_idempotent(pairs in proptest::collection::vec((aterm(), aterm()), 0..8)) {
        let mut v = Vocabulary::new();
        let pairs: Vec<(Term, Term)> = pairs
            .into_iter()
            .map(|(a, b)| (materialize(&mut v, a), materialize(&mut v, b)))
            .collect();
        if let Some(mgu) = mgu_pairs(&pairs) {
            for (var, image) in mgu.iter() {
                prop_assert_eq!(mgu.apply_term(image), image);
                // The domain never maps a variable to itself.
                prop_assert_ne!(Term::Var(var), image);
            }
        }
    }

    /// Most-generality: any unifier δ of the pairs factors through the MGU,
    /// i.e. δ = δ ∘ mgu on all terms of the problem.
    #[test]
    fn mgu_is_most_general(pairs in proptest::collection::vec((aterm(), aterm()), 1..8), ground in proptest::collection::vec(0..3u8, 6)) {
        let mut v = Vocabulary::new();
        let pairs: Vec<(Term, Term)> = pairs
            .into_iter()
            .map(|(a, b)| (materialize(&mut v, a), materialize(&mut v, b)))
            .collect();
        // δ grounds every variable X0..X5 to a constant chosen by `ground`.
        let delta: magik_relalg::Substitution = (0..6u8)
            .map(|i| {
                let var = v.var(&format!("X{i}"));
                let c = v.cst(&format!("c{}", ground[i as usize]));
                (var, Term::Cst(c))
            })
            .collect();
        let delta_unifies = pairs
            .iter()
            .all(|&(a, b)| delta.apply_term(a) == delta.apply_term(b));
        if delta_unifies {
            let mgu = mgu_pairs(&pairs);
            prop_assert!(mgu.is_some(), "a unifiable problem must have an MGU");
            let mgu = mgu.unwrap();
            for &(a, b) in &pairs {
                for t in [a, b] {
                    prop_assert_eq!(
                        delta.apply_term(mgu.apply_term(t)),
                        delta.apply_term(t)
                    );
                }
            }
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn unification_success_is_symmetric(a in proptest::collection::vec(aterm(), 3), b in proptest::collection::vec(aterm(), 3)) {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 3);
        let aa = Atom::new(p, a.into_iter().map(|t| materialize(&mut v, t)).collect());
        let bb = Atom::new(p, b.into_iter().map(|t| materialize(&mut v, t)).collect());
        prop_assert_eq!(mgu_atoms(&aa, &bb).is_some(), mgu_atoms(&bb, &aa).is_some());
    }

    /// Rollback restores the unifier exactly.
    #[test]
    fn rollback_is_exact(first in proptest::collection::vec((aterm(), aterm()), 0..5), second in proptest::collection::vec((aterm(), aterm()), 0..5)) {
        let mut v = Vocabulary::new();
        let mut u = Unifier::new();
        for (a, b) in first {
            let (a, b) = (materialize(&mut v, a), materialize(&mut v, b));
            if !u.unify_terms(a, b) {
                break;
            }
        }
        let snapshot: Vec<(Term, Term)> = (0..6u8)
            .map(|i| {
                let t = Term::Var(v.var(&format!("X{i}")));
                (t, u.resolve(t))
            })
            .collect();
        let cp = u.checkpoint();
        for (a, b) in second {
            let (a, b) = (materialize(&mut v, a), materialize(&mut v, b));
            if !u.unify_terms(a, b) {
                break;
            }
        }
        u.rollback(cp);
        for (t, resolved) in snapshot {
            prop_assert_eq!(u.resolve(t), resolved);
        }
    }
}
