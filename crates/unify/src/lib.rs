//! Syntactic unification for MAGIK-rs.
//!
//! The specialization side of the paper (Section 4) is built on unification
//! between query atoms and the heads/conditions of table-completeness
//! statements — the role SWI-Prolog played in the authors' implementation.
//! This crate provides that machinery over the flat terms of
//! [`magik_relalg`]: a [`Unifier`] accumulates bindings with chain
//! resolution and supports checkpoints for backtracking search, and
//! [`mgu_atoms`] / [`mgu_pairs`] compute most general unifiers as idempotent
//! [`Substitution`]s.
//!
//! Because terms are flat (variables and constants only, no function
//! symbols), unification always terminates without an occurs check and MGUs
//! are computable in near-linear time.
//!
//! # Example
//!
//! ```
//! use magik_relalg::{Vocabulary, Atom, Term};
//! use magik_unify::mgu_atoms;
//!
//! let mut v = Vocabulary::new();
//! let learns = v.pred("learns", 2);
//! let (n, l) = (v.var("N"), v.var("L"));
//! // learns(N, L) unifies with learns(N2, english) by {L -> english, N -> N2}.
//! let n2 = v.var("N2");
//! let english = v.cst("english");
//! let a = Atom::new(learns, vec![Term::Var(n), Term::Var(l)]);
//! let b = Atom::new(learns, vec![Term::Var(n2), Term::Cst(english)]);
//! let mgu = mgu_atoms(&a, &b).unwrap();
//! assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b));
//! assert_eq!(mgu.apply_term(Term::Var(l)), Term::Cst(english));
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::HashMap;

use magik_relalg::{Atom, Query, Substitution, Term, Var, Vocabulary};

/// An incremental unifier with checkpoint/rollback support.
///
/// Bindings form a forest: a variable is bound to a term, which may itself
/// be a variable bound further. [`Unifier::resolve`] follows chains to the
/// representative. The trail records bound variables so that
/// [`Unifier::rollback`] can undo everything past a [`Checkpoint`] — the
/// backbone of the backtracking searches in `magik-completeness`.
#[derive(Debug, Default, Clone)]
pub struct Unifier {
    bindings: HashMap<Var, Term>,
    trail: Vec<Var>,
}

/// A point in the trail to roll back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(usize);

impl Unifier {
    /// Creates an empty unifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.trail.len()
    }

    /// `true` iff no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.trail.is_empty()
    }

    /// Follows binding chains until reaching an unbound variable or a
    /// constant.
    pub fn resolve(&self, mut t: Term) -> Term {
        while let Term::Var(v) = t {
            match self.bindings.get(&v) {
                Some(&next) => t = next,
                None => break,
            }
        }
        t
    }

    /// Records the current trail position.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.trail.len())
    }

    /// Undoes all bindings made after `cp`.
    pub fn rollback(&mut self, cp: Checkpoint) {
        while self.trail.len() > cp.0 {
            let v = self.trail.pop().expect("trail length checked");
            self.bindings.remove(&v);
        }
    }

    fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(!self.bindings.contains_key(&v));
        self.bindings.insert(v, t);
        self.trail.push(v);
    }

    /// Unifies two terms under the current bindings. On failure the
    /// unifier is left unchanged (term unification binds at most one
    /// variable, so no partial bindings can leak).
    pub fn unify_terms(&mut self, a: Term, b: Term) -> bool {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (ra, rb) {
            (Term::Var(va), Term::Var(vb)) => {
                if va != vb {
                    self.bind(va, Term::Var(vb));
                }
                true
            }
            (Term::Var(v), c @ Term::Cst(_)) | (c @ Term::Cst(_), Term::Var(v)) => {
                self.bind(v, c);
                true
            }
            (Term::Cst(ca), Term::Cst(cb)) => ca == cb,
        }
    }

    /// Unifies two atoms under the current bindings. On failure the
    /// unifier is rolled back to its state at entry.
    pub fn unify_atoms(&mut self, a: &Atom, b: &Atom) -> bool {
        if a.pred != b.pred || a.args.len() != b.args.len() {
            return false;
        }
        let cp = self.checkpoint();
        for (&ta, &tb) in a.args.iter().zip(&b.args) {
            if !self.unify_terms(ta, tb) {
                self.rollback(cp);
                return false;
            }
        }
        true
    }

    /// Extracts the accumulated bindings as an idempotent substitution:
    /// every variable maps to its fully resolved representative.
    pub fn to_substitution(&self) -> Substitution {
        Substitution::from_pairs(
            self.bindings
                .keys()
                .map(|&v| (v, self.resolve(Term::Var(v)))),
        )
    }
}

/// Most general unifier of two atoms, if one exists.
pub fn mgu_atoms(a: &Atom, b: &Atom) -> Option<Substitution> {
    let mut u = Unifier::new();
    u.unify_atoms(a, b).then(|| u.to_substitution())
}

/// Most general simultaneous unifier of a sequence of term pairs.
pub fn mgu_pairs(pairs: &[(Term, Term)]) -> Option<Substitution> {
    let mut u = Unifier::new();
    for &(a, b) in pairs {
        if !u.unify_terms(a, b) {
            return None;
        }
    }
    Some(u.to_substitution())
}

/// Renames all variables of `q` to fresh ones, returning the renamed query
/// and the renaming. Used to take TC statements (and query extensions)
/// "apart" before unification.
pub fn rename_apart(q: &Query, vocab: &mut Vocabulary) -> (Query, Substitution) {
    let renaming: Substitution = q
        .all_vars()
        .into_iter()
        .map(|v| {
            let name = vocab.var_name(v).to_owned();
            (v, Term::Var(vocab.fresh_var(&name)))
        })
        .collect();
    (renaming.apply_query(q), renaming)
}

/// Renames all variables of a slice of atoms to fresh ones.
pub fn rename_atoms_apart(atoms: &[Atom], vocab: &mut Vocabulary) -> (Vec<Atom>, Substitution) {
    let mut vars = std::collections::BTreeSet::new();
    for a in atoms {
        vars.extend(a.vars());
    }
    let renaming: Substitution = vars
        .into_iter()
        .map(|v| {
            let name = vocab.var_name(v).to_owned();
            (v, Term::Var(vocab.fresh_var(&name)))
        })
        .collect();
    let renamed = atoms.iter().map(|a| renaming.apply_atom(a)).collect();
    (renamed, renaming)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::Cst;

    fn setup() -> (Vocabulary, magik_relalg::Pred, Var, Var, Cst, Cst) {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let x = v.var("X");
        let y = v.var("Y");
        let a = v.cst("a");
        let b = v.cst("b");
        (v, p, x, y, a, b)
    }

    #[test]
    fn unify_var_with_constant() {
        let (_, _, x, _, a, _) = setup();
        let mgu = mgu_pairs(&[(Term::Var(x), Term::Cst(a))]).unwrap();
        assert_eq!(mgu.apply_term(Term::Var(x)), Term::Cst(a));
    }

    #[test]
    fn unify_distinct_constants_fails() {
        let (_, _, _, _, a, b) = setup();
        assert!(mgu_pairs(&[(Term::Cst(a), Term::Cst(b))]).is_none());
        assert!(mgu_pairs(&[(Term::Cst(a), Term::Cst(a))]).is_some());
    }

    #[test]
    fn unify_chains_resolve_transitively() {
        let (mut v, _, x, y, a, _) = setup();
        let z = v.var("Z");
        // X = Y, Y = Z, Z = a  =>  all map to a.
        let mgu = mgu_pairs(&[
            (Term::Var(x), Term::Var(y)),
            (Term::Var(y), Term::Var(z)),
            (Term::Var(z), Term::Cst(a)),
        ])
        .unwrap();
        for var in [x, y, z] {
            assert_eq!(mgu.apply_term(Term::Var(var)), Term::Cst(a));
        }
    }

    #[test]
    fn conflicting_chain_fails() {
        let (_, _, x, y, a, b) = setup();
        assert!(mgu_pairs(&[
            (Term::Var(x), Term::Cst(a)),
            (Term::Var(y), Term::Cst(b)),
            (Term::Var(x), Term::Var(y)),
        ])
        .is_none());
    }

    #[test]
    fn atom_unification_requires_same_predicate() {
        let (mut v, p, x, y, _, _) = setup();
        let q = v.pred("q", 2);
        let a1 = Atom::new(p, vec![Term::Var(x), Term::Var(y)]);
        let a2 = Atom::new(q, vec![Term::Var(x), Term::Var(y)]);
        assert!(mgu_atoms(&a1, &a2).is_none());
    }

    #[test]
    fn atom_unification_merges_repeated_vars() {
        let (mut v, p, x, _, a, _) = setup();
        let (u1, u2) = (v.var("U1"), v.var("U2"));
        // p(X, X) with p(U1, U2): forces U1 = U2.
        let a1 = Atom::new(p, vec![Term::Var(x), Term::Var(x)]);
        let a2 = Atom::new(p, vec![Term::Var(u1), Term::Var(u2)]);
        let mgu = mgu_atoms(&a1, &a2).unwrap();
        assert_eq!(mgu.apply_atom(&a1), mgu.apply_atom(&a2));
        // p(X, X) with p(a, b) must fail.
        let ground = Atom::new(p, vec![Term::Cst(a), Term::Cst(v.cst("b"))]);
        assert!(mgu_atoms(&a1, &ground).is_none());
    }

    #[test]
    fn failed_atom_unification_rolls_back() {
        let (_, p, x, y, a, b) = setup();
        let mut u = Unifier::new();
        assert!(u.unify_terms(Term::Var(x), Term::Cst(a)));
        let before = u.len();
        // p(X, Y) vs p(b, b): the X/b pair fails, Y must stay unbound.
        let a1 = Atom::new(p, vec![Term::Var(x), Term::Var(y)]);
        let a2 = Atom::new(p, vec![Term::Cst(b), Term::Cst(b)]);
        assert!(!u.unify_atoms(&a1, &a2));
        assert_eq!(u.len(), before);
        assert_eq!(u.resolve(Term::Var(y)), Term::Var(y));
    }

    #[test]
    fn checkpoint_rollback_restores_state() {
        let (_, _, x, y, a, _) = setup();
        let mut u = Unifier::new();
        assert!(u.unify_terms(Term::Var(x), Term::Cst(a)));
        let cp = u.checkpoint();
        assert!(u.unify_terms(Term::Var(y), Term::Var(x)));
        assert_eq!(u.resolve(Term::Var(y)), Term::Cst(a));
        u.rollback(cp);
        assert_eq!(u.resolve(Term::Var(y)), Term::Var(y));
        assert_eq!(u.resolve(Term::Var(x)), Term::Cst(a));
    }

    #[test]
    fn substitution_is_idempotent() {
        let (mut v, _, x, y, a, _) = setup();
        let z = v.var("Z");
        let mgu = mgu_pairs(&[(Term::Var(x), Term::Var(y)), (Term::Var(z), Term::Cst(a))]).unwrap();
        // Applying twice equals applying once.
        for var in [x, y, z] {
            let once = mgu.apply_term(Term::Var(var));
            assert_eq!(mgu.apply_term(once), once);
        }
    }

    #[test]
    fn rename_apart_produces_variable_disjoint_query() {
        let (mut v, p, x, y, _, _) = setup();
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        let (renamed, renaming) = rename_apart(&q, &mut v);
        let original_vars = q.all_vars();
        for var in renamed.all_vars() {
            assert!(!original_vars.contains(&var));
        }
        // The renaming maps old to new bijectively.
        assert_eq!(renaming.len(), 2);
        assert_eq!(renaming.apply_query(&q), renamed);
    }

    #[test]
    fn rename_atoms_apart_is_consistent_across_atoms() {
        let (mut v, p, x, y, _, _) = setup();
        let atoms = vec![
            Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(p, vec![Term::Var(y), Term::Var(x)]),
        ];
        let (renamed, _) = rename_atoms_apart(&atoms, &mut v);
        // The shared variables stay shared after renaming.
        assert_eq!(renamed[0].args[0], renamed[1].args[1]);
        assert_eq!(renamed[0].args[1], renamed[1].args[0]);
        assert_ne!(renamed[0].args[0], atoms[0].args[0]);
    }

    #[test]
    fn paper_example_22_unifier() {
        // γ = {L -> english} is a complete unifier for Q_pbl; here we check
        // the unification step: learns(N, L) vs learns(N2, english).
        let mut v = Vocabulary::new();
        let learns = v.pred("learns", 2);
        let (n, l, n2) = (v.var("N"), v.var("L"), v.var("N2"));
        let english = v.cst("english");
        let qa = Atom::new(learns, vec![Term::Var(n), Term::Var(l)]);
        let ha = Atom::new(learns, vec![Term::Var(n2), Term::Cst(english)]);
        let mgu = mgu_atoms(&qa, &ha).unwrap();
        assert_eq!(mgu.apply_term(Term::Var(l)), Term::Cst(english));
    }
}
