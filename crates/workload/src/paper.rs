//! The workloads used in the paper itself.

use magik_completeness::{TcSet, TcStatement};
use magik_relalg::{Atom, Pred, Query, Term, Vocabulary};

/// The "schoolBolzano" schema of Example 1 and handles to everything the
/// running example mentions.
#[derive(Debug, Clone)]
pub struct SchoolWorkload {
    /// The vocabulary owning all names below.
    pub vocab: Vocabulary,
    /// `pupil(pname, code, sname)`
    pub pupil: Pred,
    /// `school(sname, type, district)`
    pub school: Pred,
    /// `learns(pname, lang)`
    pub learns: Pred,
    /// The statements `{C_sp, C_pb, C_enp}` of Example 1.
    pub tcs: TcSet,
    /// `Q_ppb(N) ← pupil(N, C, S), school(S, primary, merano)` — complete.
    pub q_ppb: Query,
    /// `Q_pbl(N) ← pupil(N, C, S), school(S, primary, merano), learns(N, L)`
    /// — incomplete.
    pub q_pbl: Query,
}

/// Builds the running example (Example 1).
pub fn school() -> SchoolWorkload {
    let mut v = Vocabulary::new();
    let pupil = v.pred("pupil", 3);
    let school = v.pred("school", 3);
    let learns = v.pred("learns", 2);
    let (n, c, s, t, d, l) = (
        v.var("N"),
        v.var("C"),
        v.var("S"),
        v.var("T"),
        v.var("D"),
        v.var("L"),
    );
    let (primary, merano, english) = (v.cst("primary"), v.cst("merano"), v.cst("english"));
    let tcs = TcSet::new(vec![
        TcStatement::new(
            Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
            vec![],
        ),
        TcStatement::new(
            Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
            vec![Atom::new(
                school,
                vec![Term::Var(s), Term::Var(t), Term::Cst(merano)],
            )],
        ),
        TcStatement::new(
            Atom::new(learns, vec![Term::Var(n), Term::Cst(english)]),
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
            ],
        ),
    ]);
    let q_ppb = Query::new(
        v.sym("q_ppb"),
        vec![Term::Var(n)],
        vec![
            Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
            Atom::new(
                school,
                vec![Term::Var(s), Term::Cst(primary), Term::Cst(merano)],
            ),
        ],
    );
    let mut body = q_ppb.body.clone();
    body.push(Atom::new(learns, vec![Term::Var(n), Term::Var(l)]));
    let q_pbl = Query::new(v.sym("q_pbl"), vec![Term::Var(n)], body);
    SchoolWorkload {
        vocab: v,
        pupil,
        school,
        learns,
        tcs,
        q_ppb,
        q_pbl,
    }
}

/// The Section 5 / Table 1 specialization workload.
#[derive(Debug, Clone)]
pub struct Table1Workload {
    /// The vocabulary owning all names below.
    pub vocab: Vocabulary,
    /// The statement set: the running example minus `C_pb`, plus two
    /// `class`-conditioned pupil statements (and, in the satisfiable
    /// variant, an unconditional `class` statement).
    pub tcs: TcSet,
    /// `Q_l(N) ← learns(N, L)`.
    pub q_l: Query,
}

fn table1_base(satisfiable: bool) -> Table1Workload {
    let SchoolWorkload {
        mut vocab,
        pupil,
        learns,
        tcs,
        ..
    } = school();
    let class = vocab.pred("class", 4);
    let (n, c, s, l, t) = (
        vocab.var("N"),
        vocab.var("C"),
        vocab.var("S"),
        vocab.var("L"),
        vocab.var("T"),
    );
    let (half, full) = (vocab.cst("halfDay"), vocab.cst("fullDay"));
    let mut stmts: Vec<TcStatement> = tcs
        .statements()
        .iter()
        .filter(|c| c.head.pred != pupil) // minus C_pb
        .cloned()
        .collect();
    for day in [half, full] {
        stmts.push(TcStatement::new(
            Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
            vec![Atom::new(
                class,
                vec![Term::Var(c), Term::Var(s), Term::Var(l), Term::Cst(day)],
            )],
        ));
    }
    if satisfiable {
        // The ablation variant: class itself is complete, so complete
        // specializations of Q_l exist and the search has survivors.
        stmts.push(TcStatement::new(
            Atom::new(
                class,
                vec![Term::Var(c), Term::Var(s), Term::Var(l), Term::Var(t)],
            ),
            vec![],
        ));
    }
    let q_l = Query::new(
        vocab.sym("q_l"),
        vec![Term::Var(n)],
        vec![Atom::new(learns, vec![Term::Var(n), Term::Var(l)])],
    );
    Table1Workload {
        vocab,
        tcs: TcSet::new(stmts),
        q_l,
    }
}

/// The exact Table 1 workload of the paper: no complete specialization
/// exists, and the k-MCS search must exhaust an exponentially growing
/// space to establish that.
pub fn table1() -> Table1Workload {
    table1_base(false)
}

/// A satisfiable variant of the Table 1 workload (adds
/// `Compl(class(C, S, L, T); true)`), used by ablation benchmarks so that
/// the search also produces results.
pub fn table1_satisfiable() -> Table1Workload {
    table1_base(true)
}

/// The Theorem 17 flight workload.
#[derive(Debug, Clone)]
pub struct FlightWorkload {
    /// The vocabulary owning all names below.
    pub vocab: Vocabulary,
    /// `conn(from, to)`.
    pub conn: Pred,
    /// `{Compl(conn(X, Y); conn(Y, Z))}`.
    pub tcs: TcSet,
    /// `Q(X) ← conn(X, Y)`: cities with an outgoing flight.
    pub q: Query,
}

/// Builds the flight example of Theorem 17.
pub fn flight() -> FlightWorkload {
    let mut v = Vocabulary::new();
    let conn = v.pred("conn", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let tcs = TcSet::new(vec![TcStatement::new(
        Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
        vec![Atom::new(conn, vec![Term::Var(y), Term::Var(z)])],
    )]);
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(conn, vec![Term::Var(x), Term::Var(y)])],
    );
    FlightWorkload {
        vocab: v,
        conn,
        tcs,
        q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_completeness::{is_complete, k_mcs, mcg, KMcsOptions};
    use magik_relalg::are_equivalent;

    #[test]
    fn school_workload_reproduces_example_1() {
        let mut w = school();
        assert!(is_complete(&w.q_ppb, &w.tcs));
        assert!(!is_complete(&w.q_pbl, &w.tcs));
        let m = mcg(&w.q_pbl, &w.tcs).unwrap();
        assert!(are_equivalent(&m, &w.q_ppb));
        let _ = &mut w.vocab;
    }

    #[test]
    fn table1_workload_is_unsatisfiable_and_acyclic() {
        let w = table1();
        assert_eq!(w.tcs.len(), 4);
        assert!(w.tcs.is_acyclic());
        assert!(!is_complete(&w.q_l, &w.tcs));
    }

    #[test]
    fn table1_satisfiable_variant_has_mcss() {
        let mut w = table1_satisfiable();
        assert_eq!(w.tcs.len(), 5);
        let out = k_mcs(&w.q_l, &w.tcs, &mut w.vocab, KMcsOptions::new(3));
        assert!(out.complete_search);
        assert!(
            !out.queries.is_empty(),
            "the satisfiable variant must admit complete specializations"
        );
        for m in &out.queries {
            assert!(is_complete(m, &w.tcs));
        }
    }

    #[test]
    fn flight_workload_matches_theorem_17() {
        let w = flight();
        assert!(!w.tcs.is_acyclic());
        assert!(!is_complete(&w.q, &w.tcs));
        assert_eq!(mcg(&w.q, &w.tcs), None);
    }
}
