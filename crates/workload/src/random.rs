//! Random queries and statement sets for scaling benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use magik_completeness::{TcSet, TcStatement};
use magik_relalg::{Atom, Pred, Query, Term, Vocabulary};

/// The shape of a generated query body over binary relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// `r(X0, X1), r(X1, X2), …` — a path.
    Chain,
    /// `r(X0, X1), r(X0, X2), …` — all atoms share the first variable.
    Star,
    /// A chain closed back to `X0`.
    Cycle,
    /// Random endpoints drawn from a small variable pool.
    Random,
}

/// Configuration for [`query`].
#[derive(Debug, Clone, Copy)]
pub struct RandomQueryConfig {
    /// Body shape.
    pub shape: QueryShape,
    /// Number of body atoms.
    pub atoms: usize,
    /// Number of distinct binary relations to draw from (`r0 … r{n-1}`).
    pub relations: usize,
    /// Probability that an argument position is a constant
    /// (Random shape only).
    pub constant_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomQueryConfig {
    fn default() -> Self {
        RandomQueryConfig {
            shape: QueryShape::Chain,
            atoms: 4,
            relations: 2,
            constant_prob: 0.15,
            seed: 1,
        }
    }
}

fn relation(vocab: &mut Vocabulary, i: usize) -> Pred {
    vocab.pred(&format!("r{i}"), 2)
}

/// Generates a query with head `q(X0)` and the configured body shape.
pub fn query(config: RandomQueryConfig, vocab: &mut Vocabulary) -> Query {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let var = |vocab: &mut Vocabulary, i: usize| vocab.var(&format!("X{i}"));
    let n = config.atoms;
    let mut body = Vec::with_capacity(n);
    for i in 0..n {
        let pred = relation(vocab, rng.gen_range(0..config.relations.max(1)));
        let (a, b) = match config.shape {
            QueryShape::Chain => (i, i + 1),
            QueryShape::Star => (0, i + 1),
            QueryShape::Cycle => (i, (i + 1) % n),
            QueryShape::Random => (rng.gen_range(0..=n), rng.gen_range(0..=n)),
        };
        let term = |vocab: &mut Vocabulary, ix: usize, rng: &mut StdRng| {
            if config.shape == QueryShape::Random && rng.gen_bool(config.constant_prob) {
                Term::Cst(vocab.cst(&format!("k{}", rng.gen_range(0..3))))
            } else {
                Term::Var(var(vocab, ix))
            }
        };
        let ta = term(vocab, a, &mut rng);
        let tb = term(vocab, b, &mut rng);
        body.push(Atom::new(pred, vec![ta, tb]));
    }
    let head = vec![Term::Var(var(vocab, 0))];
    Query::new(vocab.sym("q"), head, body)
}

/// Unconditional statements covering the first `covered` of `relations`
/// binary relations: the standard way to make a configurable fraction of a
/// random query complete.
pub fn covering_tcs(relations: usize, covered: usize, vocab: &mut Vocabulary) -> TcSet {
    (0..covered.min(relations))
        .map(|i| {
            let pred = relation(vocab, i);
            let (x, y) = (vocab.var("CX"), vocab.var("CY"));
            TcStatement::new(Atom::new(pred, vec![Term::Var(x), Term::Var(y)]), vec![])
        })
        .collect()
}

/// A cascade workload for MCG iteration benchmarks: statements
/// `Compl(rᵢ(X, Y); rᵢ₊₁(X, Y))` for `i < depth` and a chain query over
/// `r0 … r{depth-1}`. Each `G_C` application peels exactly one atom, so
/// Algorithm 1 performs `depth + 1` iterations (the Proposition 12(c)
/// worst case).
pub fn cascade(depth: usize, vocab: &mut Vocabulary) -> (TcSet, Query) {
    let preds: Vec<Pred> = (0..=depth).map(|i| relation(vocab, i)).collect();
    let (x, y) = (vocab.var("X"), vocab.var("Y"));
    let tcs = (0..depth)
        .map(|i| {
            TcStatement::new(
                Atom::new(preds[i], vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(preds[i + 1], vec![Term::Var(x), Term::Var(y)])],
            )
        })
        .collect();
    let body = (0..depth)
        .map(|i| Atom::new(preds[i], vec![Term::Var(x), Term::Var(y)]))
        .collect();
    let q = Query::boolean(vocab.sym("q"), body);
    (tcs, q)
}

/// Configuration for [`acyclic_tcs`].
#[derive(Debug, Clone, Copy)]
pub struct RandomTcsConfig {
    /// Number of statements.
    pub statements: usize,
    /// Number of binary relations (`r0 … r{n-1}`).
    pub relations: usize,
    /// Maximum condition length.
    pub max_condition: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomTcsConfig {
    fn default() -> Self {
        RandomTcsConfig {
            statements: 4,
            relations: 4,
            max_condition: 2,
            seed: 1,
        }
    }
}

/// Generates a random **acyclic** statement set: the head of each
/// statement is over a relation with a strictly smaller index than every
/// relation in its condition, so the dependency graph is a DAG by
/// construction.
pub fn acyclic_tcs(config: RandomTcsConfig, vocab: &mut Vocabulary) -> TcSet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut statements = Vec::with_capacity(config.statements);
    for si in 0..config.statements {
        let head_rel = rng.gen_range(0..config.relations.saturating_sub(1).max(1));
        let head_pred = relation(vocab, head_rel);
        let (x, y) = (vocab.var(&format!("S{si}X")), vocab.var(&format!("S{si}Y")));
        let head = Atom::new(head_pred, vec![Term::Var(x), Term::Var(y)]);
        let cond_len = rng.gen_range(0..=config.max_condition);
        let condition = (0..cond_len)
            .map(|ci| {
                let rel = rng.gen_range(head_rel + 1..config.relations);
                let z = vocab.var(&format!("S{si}Z{ci}"));
                // Share X with the head so conditions actually constrain.
                Atom::new(relation(vocab, rel), vec![Term::Var(x), Term::Var(z)])
            })
            .collect();
        statements.push(TcStatement::new(head, condition));
    }
    TcSet::new(statements)
}

/// Generates a random **cyclic** statement set: like [`acyclic_tcs`] but
/// condition relations are drawn freely (and one guaranteed back-edge is
/// added), so the dependency graph contains cycles. Used to exercise the
/// Theorem 17 regime, where only bounded (k-MCS) search is meaningful.
pub fn cyclic_tcs(config: RandomTcsConfig, vocab: &mut Vocabulary) -> TcSet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut statements = Vec::with_capacity(config.statements + 1);
    for si in 0..config.statements {
        let head_rel = rng.gen_range(0..config.relations);
        let (x, y) = (vocab.var(&format!("C{si}X")), vocab.var(&format!("C{si}Y")));
        let head = Atom::new(relation(vocab, head_rel), vec![Term::Var(x), Term::Var(y)]);
        let cond_len = rng.gen_range(0..=config.max_condition);
        let condition = (0..cond_len)
            .map(|ci| {
                let rel = rng.gen_range(0..config.relations);
                let z = vocab.var(&format!("C{si}Z{ci}"));
                Atom::new(relation(vocab, rel), vec![Term::Var(y), Term::Var(z)])
            })
            .collect();
        statements.push(TcStatement::new(head, condition));
    }
    // Guarantee at least one cycle: r0 conditioned on itself.
    let (x, y, z) = (vocab.var("CWX"), vocab.var("CWY"), vocab.var("CWZ"));
    statements.push(TcStatement::new(
        Atom::new(relation(vocab, 0), vec![Term::Var(x), Term::Var(y)]),
        vec![Atom::new(
            relation(vocab, 0),
            vec![Term::Var(y), Term::Var(z)],
        )],
    ));
    TcSet::new(statements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_completeness::{is_complete, mcg_with_stats};

    #[test]
    fn shapes_have_expected_structure() {
        let mut v = Vocabulary::new();
        let chain = query(
            RandomQueryConfig {
                shape: QueryShape::Chain,
                atoms: 3,
                relations: 1,
                ..RandomQueryConfig::default()
            },
            &mut v,
        );
        assert_eq!(chain.size(), 3);
        // Chain: atom i's second argument equals atom i+1's first.
        for i in 0..2 {
            assert_eq!(chain.body[i].args[1], chain.body[i + 1].args[0]);
        }
        let cycle = query(
            RandomQueryConfig {
                shape: QueryShape::Cycle,
                atoms: 3,
                relations: 1,
                ..RandomQueryConfig::default()
            },
            &mut v,
        );
        assert_eq!(cycle.body[2].args[1], cycle.body[0].args[0]);
        let star = query(
            RandomQueryConfig {
                shape: QueryShape::Star,
                atoms: 3,
                relations: 1,
                ..RandomQueryConfig::default()
            },
            &mut v,
        );
        for a in &star.body {
            assert_eq!(a.args[0], star.body[0].args[0]);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut v1 = Vocabulary::new();
        let mut v2 = Vocabulary::new();
        let cfg = RandomQueryConfig {
            shape: QueryShape::Random,
            atoms: 5,
            relations: 3,
            ..RandomQueryConfig::default()
        };
        assert_eq!(query(cfg, &mut v1).body, query(cfg, &mut v2).body);
    }

    #[test]
    fn full_coverage_makes_queries_complete() {
        let mut v = Vocabulary::new();
        let q = query(
            RandomQueryConfig {
                atoms: 4,
                relations: 2,
                ..RandomQueryConfig::default()
            },
            &mut v,
        );
        let full = covering_tcs(2, 2, &mut v);
        assert!(is_complete(&q, &full));
        let none = covering_tcs(2, 0, &mut v);
        assert!(!is_complete(&q, &none));
    }

    #[test]
    fn cascade_takes_depth_plus_one_iterations() {
        for depth in [1usize, 3, 6] {
            let mut v = Vocabulary::new();
            let (tcs, q) = cascade(depth, &mut v);
            let (result, stats) = mcg_with_stats(&q, &tcs);
            assert_eq!(result.unwrap().size(), 0);
            assert_eq!(stats.iterations, depth + 1, "depth {depth}");
        }
    }

    #[test]
    fn acyclic_generator_is_acyclic() {
        for seed in 0..8 {
            let mut v = Vocabulary::new();
            let tcs = acyclic_tcs(
                RandomTcsConfig {
                    statements: 6,
                    relations: 5,
                    max_condition: 2,
                    seed,
                },
                &mut v,
            );
            assert!(tcs.is_acyclic(), "seed {seed}");
        }
    }

    #[test]
    fn cyclic_generator_is_cyclic() {
        for seed in 0..8 {
            let mut v = Vocabulary::new();
            let tcs = cyclic_tcs(
                RandomTcsConfig {
                    statements: 4,
                    relations: 3,
                    max_condition: 2,
                    seed,
                },
                &mut v,
            );
            assert!(!tcs.is_acyclic(), "seed {seed}");
        }
    }

    #[test]
    fn bounded_search_on_cyclic_sets_stays_sound() {
        // Fuzz the Theorem 17 regime: on cyclic statement sets the k-MCS
        // search must terminate and return only valid bounded complete
        // specializations, with both engines agreeing.
        use magik_completeness::{k_mcs, KMcsEngine, KMcsOptions};
        use magik_relalg::{are_equivalent, is_contained_in};
        for seed in 0..6 {
            let mut v = Vocabulary::new();
            let tcs = cyclic_tcs(
                RandomTcsConfig {
                    statements: 3,
                    relations: 2,
                    max_condition: 1,
                    seed,
                },
                &mut v,
            );
            let q = query(
                RandomQueryConfig {
                    shape: QueryShape::Chain,
                    atoms: 1,
                    relations: 2,
                    seed,
                    ..RandomQueryConfig::default()
                },
                &mut v,
            );
            let optimized = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(2));
            let naive = k_mcs(
                &q,
                &tcs,
                &mut v,
                KMcsOptions {
                    engine: KMcsEngine::Naive,
                    ..KMcsOptions::new(2)
                },
            );
            assert!(optimized.complete_search && naive.complete_search);
            assert_eq!(optimized.queries.len(), naive.queries.len(), "seed {seed}");
            for m in &optimized.queries {
                assert!(is_complete(m, &tcs), "seed {seed}");
                assert!(is_contained_in(m, &q), "seed {seed}");
                assert!(m.size() <= q.size() + 2, "seed {seed}");
                assert!(naive.queries.iter().any(|n| are_equivalent(m, n)));
            }
        }
    }
}
