//! Synthetic data: populated school databases of configurable size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use magik_completeness::semantics::IncompleteDatabase;
use magik_completeness::TcSet;
use magik_relalg::{Fact, Instance, Vocabulary};

use crate::paper::SchoolWorkload;

/// Shape of a synthetic school database.
#[derive(Debug, Clone, Copy)]
pub struct SchoolDataConfig {
    /// Number of schools. Roughly half are primary; districts rotate
    /// through `merano`, `bolzano` and `brixen`.
    pub schools: usize,
    /// Pupils per school.
    pub pupils_per_school: usize,
    /// Probability that a pupil learns each of the four languages.
    pub learn_prob: f64,
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
}

impl Default for SchoolDataConfig {
    fn default() -> Self {
        SchoolDataConfig {
            schools: 10,
            pupils_per_school: 20,
            learn_prob: 0.4,
            seed: 20130826, // the VLDB'13 demo week
        }
    }
}

const DISTRICTS: [&str; 3] = ["merano", "bolzano", "brixen"];
const TYPES: [&str; 2] = ["primary", "middle"];
const LANGUAGES: [&str; 4] = ["english", "german", "italian", "ladin"];

/// Generates a ground school instance (the *ideal* state of a scenario).
pub fn school_instance(
    w: &SchoolWorkload,
    vocab: &mut Vocabulary,
    config: SchoolDataConfig,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Instance::new();
    for si in 0..config.schools {
        let sname = vocab.cst(&format!("school{si}"));
        let stype = vocab.cst(TYPES[si % TYPES.len()]);
        let district = vocab.cst(DISTRICTS[si % DISTRICTS.len()]);
        db.insert(Fact::new(w.school, vec![sname, stype, district]));
        for pi in 0..config.pupils_per_school {
            let pname = vocab.cst(&format!("pupil{si}_{pi}"));
            let code = vocab.cst(&format!("c{}", pi % 5));
            db.insert(Fact::new(w.pupil, vec![pname, code, sname]));
            for lang in LANGUAGES {
                if rng.gen_bool(config.learn_prob) {
                    let lang = vocab.cst(lang);
                    db.insert(Fact::new(w.learns, vec![pname, lang]));
                }
            }
        }
    }
    db
}

/// Builds an adversarial incomplete database from an ideal instance: the
/// available state is the minimal one satisfying the statements
/// (`T_C(Dⁱ)`, Proposition 2), i.e. everything not guaranteed is missing.
pub fn minimal_scenario(ideal: Instance, tcs: &TcSet) -> IncompleteDatabase {
    IncompleteDatabase::minimal_completion(ideal, tcs)
}

/// Builds a *lossy* incomplete database: starts from the minimal
/// completion and additionally re-inserts each unguaranteed ideal fact
/// with probability `keep_prob` — a more realistic partially complete
/// state that still satisfies the statements.
pub fn lossy_scenario(
    ideal: Instance,
    tcs: &TcSet,
    keep_prob: f64,
    seed: u64,
) -> IncompleteDatabase {
    let minimal = IncompleteDatabase::minimal_completion(ideal.clone(), tcs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut available = minimal.available().clone();
    for fact in ideal.iter_facts() {
        if !available.contains(&fact) && rng.gen_bool(keep_prob) {
            available.insert(fact);
        }
    }
    IncompleteDatabase::new(ideal, available).expect("available built as a subset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::school;
    use magik_relalg::answers;

    #[test]
    fn generation_is_deterministic() {
        let w = school();
        let mut v1 = w.vocab.clone();
        let mut v2 = w.vocab.clone();
        let a = school_instance(&w, &mut v1, SchoolDataConfig::default());
        let b = school_instance(&w, &mut v2, SchoolDataConfig::default());
        assert_eq!(a, b);
        let c = school_instance(
            &w,
            &mut v1,
            SchoolDataConfig {
                seed: 7,
                ..SchoolDataConfig::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_scale_with_config() {
        let w = school();
        let mut v = w.vocab.clone();
        let small = school_instance(
            &w,
            &mut v,
            SchoolDataConfig {
                schools: 2,
                pupils_per_school: 3,
                ..SchoolDataConfig::default()
            },
        );
        assert_eq!(small.relation(w.school).unwrap().len(), 2);
        assert_eq!(small.relation(w.pupil).unwrap().len(), 6);
    }

    #[test]
    fn scenarios_satisfy_the_statements() {
        let w = school();
        let mut v = w.vocab.clone();
        let ideal = school_instance(&w, &mut v, SchoolDataConfig::default());
        let minimal = minimal_scenario(ideal.clone(), &w.tcs);
        assert!(minimal.satisfies_all(&w.tcs));
        let lossy = lossy_scenario(ideal, &w.tcs, 0.5, 99);
        assert!(lossy.satisfies_all(&w.tcs));
        assert!(minimal.available().len() <= lossy.available().len());
    }

    #[test]
    fn complete_query_loses_nothing_on_scenarios() {
        let w = school();
        let mut v = w.vocab.clone();
        let ideal = school_instance(&w, &mut v, SchoolDataConfig::default());
        let scenario = minimal_scenario(ideal, &w.tcs);
        assert!(scenario.query_complete(&w.q_ppb).unwrap());
        // The incomplete query does lose answers on this data (some pupil
        // learns a non-English language at a primary merano school with
        // overwhelming probability at this size).
        let ideal_ans = answers(&w.q_pbl, scenario.ideal()).unwrap();
        let avail_ans = answers(&w.q_pbl, scenario.available()).unwrap();
        assert!(avail_ans.len() < ideal_ans.len());
    }
}
