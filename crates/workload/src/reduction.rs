//! The Appendix A reduction: **Critical 3-colorability** ≤ₚ *"is
//! `Q' = G_C(Q)`?"* — the DP-hardness proof of Proposition 14, executable.
//!
//! Given a graph `G`, the reduction builds a statement set and two Boolean
//! queries such that `Q' = G_C(Q)` iff `G` is *critically
//! non-3-colorable*: `G` itself is not 3-colorable but removing any single
//! edge makes it 3-colorable.
//!
//! The constructions follows the paper's appendix exactly:
//!
//! * the query bodies embed the six-fact database of valid edge colorings
//!   `Eg(red, blue), Eg(blue, red), …` as ground atoms, so that a
//!   conjunction `⋀ Eg(Xᵢ, Xⱼ)` over the edges of a (sub)graph is
//!   satisfiable over the frozen body iff the (sub)graph is 3-colorable;
//! * one propositional atom `test_{i,j}` per edge is guaranteed complete
//!   exactly when the subgraph without that edge is 3-colorable, and
//!   `test_G` exactly when the whole graph is;
//! * `Q` contains all propositions, `Q'` all but `test_G`.

use magik_completeness::{g_op, TcSet, TcStatement};
use magik_relalg::{Atom, Cst, Query, Term, Vocabulary};

/// An undirected graph given by vertex count and edge list.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices (vertices are `0..vertices`).
    pub vertices: usize,
    /// Edges as vertex pairs.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Brute-force 3-colorability test (reference implementation for
    /// validating the reduction; exponential, fine for test-sized graphs).
    pub fn is_3_colorable_without(&self, skip_edge: Option<usize>) -> bool {
        fn rec(g: &Graph, skip: Option<usize>, colors: &mut Vec<u8>, v: usize) -> bool {
            if v == g.vertices {
                return true;
            }
            'colors: for c in 0..3u8 {
                for (ei, &(a, b)) in g.edges.iter().enumerate() {
                    if Some(ei) == skip {
                        continue;
                    }
                    let other = if a == v {
                        b
                    } else if b == v {
                        a
                    } else {
                        continue;
                    };
                    if other < v && colors[other] == c {
                        continue 'colors;
                    }
                }
                colors[v] = c;
                if rec(g, skip, colors, v + 1) {
                    return true;
                }
            }
            false
        }
        rec(self, skip_edge, &mut vec![0; self.vertices], 0)
    }

    /// Brute-force criticality test: not 3-colorable, but 3-colorable
    /// after removing any single edge.
    pub fn is_critically_non_3_colorable(&self) -> bool {
        !self.is_3_colorable_without(None)
            && (0..self.edges.len()).all(|e| self.is_3_colorable_without(Some(e)))
    }
}

/// The output of the Appendix A reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The statement set `C`.
    pub tcs: TcSet,
    /// The Boolean query `Q` (all `test` propositions plus the coloring
    /// facts).
    pub q: Query,
    /// The candidate `Q'` (`Q` without `test_G`).
    pub q_prime: Query,
}

/// The atom `Eg(Xᵢ, Xⱼ)` for an edge.
fn edge_atom(vocab: &mut Vocabulary, edge: (usize, usize)) -> Atom {
    let eg = vocab.pred("eg", 2);
    let xi = vocab.var(&format!("X{}", edge.0));
    let xj = vocab.var(&format!("X{}", edge.1));
    Atom::new(eg, vec![Term::Var(xi), Term::Var(xj)])
}

/// The six ground facts of valid colorings, as atoms.
fn coloring_atoms(vocab: &mut Vocabulary) -> Vec<Atom> {
    let eg = vocab.pred("eg", 2);
    let colors: Vec<Cst> = ["red", "green", "blue"]
        .iter()
        .map(|c| vocab.cst(c))
        .collect();
    let mut out = Vec::new();
    for &a in &colors {
        for &b in &colors {
            if a != b {
                out.push(Atom::new(eg, vec![Term::Cst(a), Term::Cst(b)]));
            }
        }
    }
    out
}

/// Builds the reduction for a graph.
pub fn critical_3col_reduction(g: &Graph, vocab: &mut Vocabulary) -> Reduction {
    let b_g: Vec<Atom> = g.edges.iter().map(|&e| edge_atom(vocab, e)).collect();
    let mut statements = Vec::new();

    // One proposition per edge, guaranteed by the subgraph body.
    let mut props = Vec::new();
    for (ei, _) in g.edges.iter().enumerate() {
        let test = vocab.pred(&format!("test_{ei}"), 0);
        let condition: Vec<Atom> = b_g
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != ei)
            .map(|(_, a)| a.clone())
            .collect();
        statements.push(TcStatement::new(Atom::new(test, vec![]), condition));
        props.push(Atom::new(test, vec![]));
    }
    // The whole-graph proposition.
    let test_g = vocab.pred("test_g", 0);
    statements.push(TcStatement::new(Atom::new(test_g, vec![]), b_g.clone()));
    // Eg is unconditionally complete.
    let eg = vocab.pred("eg", 2);
    let (x, y) = (vocab.var("CX"), vocab.var("CY"));
    statements.push(TcStatement::new(
        Atom::new(eg, vec![Term::Var(x), Term::Var(y)]),
        vec![],
    ));

    let colorings = coloring_atoms(vocab);
    let mut q_body = props.clone();
    q_body.push(Atom::new(test_g, vec![]));
    q_body.extend(colorings.clone());
    let mut q_prime_body = props;
    q_prime_body.extend(colorings);

    Reduction {
        tcs: TcSet::new(statements),
        q: Query::boolean(vocab.sym("q"), q_body),
        q_prime: Query::boolean(vocab.sym("q_prime"), q_prime_body),
    }
}

/// Decides critical non-3-colorability *through the reduction*: builds
/// `C`, `Q`, `Q'` and tests `Q' = G_C(Q)` (as a set of atoms — `G_C`
/// returns a subquery, so syntactic comparison is exact).
pub fn is_critical_via_g_op(g: &Graph, vocab: &mut Vocabulary) -> bool {
    let r = critical_3col_reduction(g, vocab);
    let gq = g_op(&r.q, &r.tcs);
    let mut q_prime = r.q_prime;
    q_prime.name = gq.name;
    gq.same_as(&q_prime)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph {
            vertices: 4,
            edges: vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        }
    }

    fn triangle() -> Graph {
        Graph {
            vertices: 3,
            edges: vec![(0, 1), (1, 2), (2, 0)],
        }
    }

    /// The 5-wheel: a 5-cycle plus a hub adjacent to every rim vertex.
    fn w5() -> Graph {
        let mut edges: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        edges.extend((0..5).map(|i| (i, 5)));
        Graph { vertices: 6, edges }
    }

    /// K4 with a disconnected extra edge: not 3-colorable, but removing
    /// the extra edge leaves K4, still not 3-colorable — not critical.
    fn k4_plus_pendant() -> Graph {
        let mut g = k4();
        g.vertices += 2;
        g.edges.push((4, 5));
        g
    }

    #[test]
    fn brute_force_reference_values() {
        assert!(triangle().is_3_colorable_without(None));
        assert!(!k4().is_3_colorable_without(None));
        assert!(!w5().is_3_colorable_without(None));
        assert!(k4().is_critically_non_3_colorable());
        assert!(w5().is_critically_non_3_colorable());
        assert!(!triangle().is_critically_non_3_colorable());
        assert!(!k4_plus_pendant().is_critically_non_3_colorable());
    }

    #[test]
    fn reduction_agrees_with_brute_force() {
        for (name, g) in [
            ("k4", k4()),
            ("triangle", triangle()),
            ("w5", w5()),
            ("k4+pendant", k4_plus_pendant()),
        ] {
            let mut vocab = Vocabulary::new();
            assert_eq!(
                is_critical_via_g_op(&g, &mut vocab),
                g.is_critically_non_3_colorable(),
                "graph {name}"
            );
        }
    }

    #[test]
    fn gc_keeps_exactly_the_3colorable_tests() {
        // On the triangle, every edge-removed subgraph is 3-colorable and
        // so is the whole graph: G_C keeps everything including test_g.
        let mut vocab = Vocabulary::new();
        let r = critical_3col_reduction(&triangle(), &mut vocab);
        let gq = g_op(&r.q, &r.tcs);
        assert!(gq.same_as(&r.q));

        // On K4, test_g is dropped but every test_e survives.
        let mut vocab = Vocabulary::new();
        let r = critical_3col_reduction(&k4(), &mut vocab);
        let gq = g_op(&r.q, &r.tcs);
        assert_eq!(gq.size(), r.q.size() - 1);
        let test_g = vocab.pred("test_g", 0);
        assert!(gq.body.iter().all(|a| a.pred != test_g));
    }
}
