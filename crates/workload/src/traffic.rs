//! Mixed-traffic harness: a deterministic stream of query evaluations
//! interleaved with fact churn, executed through the compiled batch
//! executor.
//!
//! This is the server's steady-state shape (A8's `mixed_90_10`) packaged
//! as a reusable workload: plans are compiled once and reused across data
//! changes (the plan-cache hit path), each evaluation runs over a fresh
//! [`Snapshot`](magik_relalg::Snapshot) of the churning instance (so the
//! column-major copy-on-write sharing is on the measured path), and the
//! executor is selectable — the vectorized batch pipeline or the
//! tuple-at-a-time register machine — so benchmarks (A13) can compare the
//! two on identical traffic.
//!
//! Everything is deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use magik_exec::{CompiledQuery, ExecStats};
use magik_relalg::exec::Projection;
use magik_relalg::{AnswerSet, Fact, Instance, Vocabulary};

use crate::paper::{school, SchoolWorkload};
use crate::synth::{school_instance, SchoolDataConfig};

/// Shape of a mixed-traffic run.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Total operations in the stream.
    pub ops: usize,
    /// Fraction of operations that are query evaluations; the rest are
    /// fact churn (assert/retract), interleaved A8-style. `0.9` is the
    /// server's `mixed_90_10` profile.
    pub eval_fraction: f64,
    /// The school instance the traffic runs over.
    pub data: SchoolDataConfig,
    /// RNG seed for the op stream (independent of `data.seed`).
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            ops: 200,
            eval_fraction: 0.9,
            data: SchoolDataConfig::default(),
            seed: 8,
        }
    }
}

/// One operation of a traffic stream.
#[derive(Debug, Clone)]
pub enum TrafficOp {
    /// Evaluate the query at this index of [`Traffic::queries`].
    Eval(usize),
    /// Insert a fact (a no-op if already present).
    Assert(Fact),
    /// Remove a fact (a no-op if absent).
    Retract(Fact),
}

/// A generated traffic stream: the query pool, the starting instance,
/// and the op sequence.
#[derive(Debug, Clone)]
pub struct Traffic {
    /// The vocabulary owning every name in the stream.
    pub vocab: Vocabulary,
    /// The queries `TrafficOp::Eval` indexes into (the paper's `Q_ppb`
    /// and `Q_pbl`).
    pub queries: Vec<magik_relalg::Query>,
    /// The instance the stream starts from.
    pub db: Instance,
    /// The operations, in execution order.
    pub ops: Vec<TrafficOp>,
}

/// Generates a school-workload traffic stream: evaluations of `Q_ppb` and
/// `Q_pbl` mixed with `learns`-fact churn. Retractions target facts a
/// previous op asserted, so the instance stays near its starting size.
pub fn school_traffic(config: TrafficConfig) -> Traffic {
    let w: SchoolWorkload = school();
    let mut vocab = w.vocab.clone();
    let db = school_instance(&w, &mut vocab, config.data);
    let languages = ["english", "german", "italian", "ladin"];
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut asserted: Vec<Fact> = Vec::new();
    let mut ops = Vec::with_capacity(config.ops);
    for _ in 0..config.ops {
        if rng.gen_bool(config.eval_fraction) {
            ops.push(TrafficOp::Eval(rng.gen_range(0..2)));
        } else if !asserted.is_empty() && rng.gen_bool(0.5) {
            let i = rng.gen_range(0..asserted.len());
            ops.push(TrafficOp::Retract(asserted.swap_remove(i)));
        } else {
            let si = rng.gen_range(0..config.data.schools.max(1));
            let pi = rng.gen_range(0..config.data.pupils_per_school.max(1));
            let pupil = vocab.cst(&format!("pupil{si}_{pi}"));
            let lang = vocab.cst(languages[rng.gen_range(0..languages.len())]);
            let fact = Fact::new(w.learns, vec![pupil, lang]);
            asserted.push(fact.clone());
            ops.push(TrafficOp::Assert(fact));
        }
    }
    Traffic {
        vocab,
        queries: vec![w.q_ppb, w.q_pbl],
        db,
        ops,
    }
}

/// Which executor [`drive`] evaluates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The vectorized batch pipeline (`CompiledQuery::answers`).
    Batch,
    /// The tuple-at-a-time register machine (`Plan::run` row by row) —
    /// the pre-vectorization executor, kept as the A13 baseline.
    Tuple,
}

/// What a [`drive`] run did, for assertions and throughput math.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Evaluations performed.
    pub evals: usize,
    /// Total answer tuples across all evaluations.
    pub answers: usize,
    /// Churn ops applied (assert + retract).
    pub churn: usize,
    /// Aggregate executor counters across all evaluations.
    pub stats: ExecStats,
}

/// Executes a traffic stream: compiles each query once against the
/// starting statistics, then replays the ops — evaluations run over a
/// snapshot of the current instance with the chosen executor, churn
/// mutates the instance in place (exercising the per-column
/// copy-on-write against the snapshots already taken).
pub fn drive(traffic: &Traffic, mode: ExecMode) -> TrafficReport {
    let compiled: Vec<CompiledQuery> = traffic
        .queries
        .iter()
        .map(|q| CompiledQuery::compile(q, Some(&traffic.db)).expect("workload queries are safe"))
        .collect();
    let heads: Vec<Projection> = traffic
        .queries
        .iter()
        .zip(&compiled)
        .map(|(q, cq)| Projection::compile(&q.head, cq.plan()).expect("safe head"))
        .collect();
    let mut db = traffic.db.clone();
    let mut report = TrafficReport {
        evals: 0,
        answers: 0,
        churn: 0,
        stats: ExecStats::default(),
    };
    for op in &traffic.ops {
        match op {
            TrafficOp::Eval(i) => {
                let snap = db.snapshot();
                let answers = match mode {
                    ExecMode::Batch => compiled[*i].answers(&snap, &mut report.stats),
                    ExecMode::Tuple => {
                        let mut ans = AnswerSet::new();
                        compiled[*i]
                            .plan()
                            .run(&snap, &[], &mut report.stats, &mut |row| {
                                ans.insert(heads[*i].emit(row));
                                true
                            });
                        ans
                    }
                };
                report.evals += 1;
                report.answers += answers.len();
            }
            TrafficOp::Assert(f) => {
                db.insert(f.clone());
                report.churn += 1;
            }
            TrafficOp::Retract(f) => {
                db.remove(f);
                report.churn += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = school_traffic(TrafficConfig::default());
        let b = school_traffic(TrafficConfig::default());
        assert_eq!(a.db, b.db);
        assert_eq!(a.ops.len(), b.ops.len());
        let renders = |t: &Traffic| t.ops.iter().map(|op| format!("{op:?}")).collect::<Vec<_>>();
        assert_eq!(renders(&a), renders(&b));
    }

    #[test]
    fn batch_and_tuple_drives_agree() {
        let traffic = school_traffic(TrafficConfig {
            ops: 120,
            ..TrafficConfig::default()
        });
        let batch = drive(&traffic, ExecMode::Batch);
        let tuple = drive(&traffic, ExecMode::Tuple);
        assert!(batch.evals > 0 && batch.churn > 0, "{batch:?}");
        assert_eq!(batch.evals, tuple.evals);
        assert_eq!(batch.churn, tuple.churn);
        // Same traffic, same answers — only the executor differs.
        assert_eq!(batch.answers, tuple.answers);
        // The batch drive actually went through the vectorized pipeline.
        assert_eq!(batch.stats.batches, batch.evals as u64);
        assert!(batch.stats.batch_rows > 0);
        assert_eq!(tuple.stats.batches, 0);
    }
}
