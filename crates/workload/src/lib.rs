//! Workloads for benchmarks, examples and tests.
//!
//! * [`paper`] — the exact workloads of the paper: the "schoolBolzano"
//!   running example (Example 1), the Theorem 17 flight example, and the
//!   Table 1 specialization workload of Section 5 (plus a satisfiable
//!   variant used by the ablation benchmarks).
//! * [`synth`] — deterministic synthetic data generators: school instances
//!   of configurable size and ideal/available pairs derived from them.
//! * [`random`] — random conjunctive queries (chain/star/cycle/mixed
//!   shapes) and random acyclic or cyclic TCS sets with a configurable
//!   coverage fraction, for scaling benchmarks and property tests.
//! * [`traffic`] — a deterministic mixed eval/churn op stream over the
//!   school workload, driven through the batch or tuple executor (the
//!   A13 harness).
//!
//! All generators are deterministic given a seed.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod paper;
pub mod random;
pub mod reduction;
pub mod synth;
pub mod traffic;
