//! Durable storage for MAGIK-rs reasoning sessions.
//!
//! The in-memory engine (`magik-server`) serializes every mutation through
//! one writer mutex and publishes epoch-tagged immutable snapshots — which
//! makes durability architecturally cheap: the writer stream *is* a log,
//! and a snapshot *is* a consistent checkpoint image. This crate supplies
//! the disk half of that observation:
//!
//! * [`Wal`] — an append-only, segment-rotated **write-ahead log** of
//!   mutation ops. Each record is a CRC-framed, length-prefixed payload
//!   carrying the op's *text* (the protocol request remainder) and the
//!   **post-op epochs** `(tcs_epoch, data_epoch)`. Storing text rather
//!   than decoded structures keeps replay on the exact same parse/apply
//!   path as live traffic. Fsync behaviour is a [`FsyncPolicy`].
//! * [`checkpoint`] — compact **snapshot checkpoints**: vocabulary, TCS
//!   set and fact instance serialized with the versioned binary codec of
//!   `magik_relalg::codec`, written to a temp file, fsynced, and
//!   atomically renamed into place. The materialized T_C model is *not*
//!   stored; it is a deterministic function of (TCS, facts) and is rebuilt
//!   on load.
//! * [`Store`] — the composition: open a directory, **recover** (newest
//!   valid checkpoint + WAL tail, torn tails discarded by CRC, epoch
//!   continuity verified), then serve appends and periodic checkpoints.
//!   After a checkpoint, WAL segments covered by the *older* retained
//!   checkpoint are truncated, so a corrupt newest checkpoint can always
//!   fall back one generation without losing log coverage.
//!
//! Every failure surfaces as a [`StorageError`] — recovery never panics
//! on arbitrary disk bytes, and corruption anywhere but the final
//! segment's tail is reported, not silently skipped.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
mod crc;
mod store;
mod wal;

use std::fmt;
use std::path::PathBuf;

pub use checkpoint::{install_checkpoint, CheckpointImage};
pub use crc::crc32;
pub use store::{CheckpointOutcome, Recovery, Store, StoreOptions};
pub use wal::{Append, FsyncPolicy, OpKind, WalRecord, MAX_FRAME_PAYLOAD};

/// Why a storage operation failed.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// On-disk bytes that are structurally invalid: a CRC mismatch away
    /// from the log tail, an undecodable checkpoint, an epoch gap, …
    Corrupt {
        /// The file the corruption was found in.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt storage in {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Creates a fresh, uniquely named scratch directory for a test.
#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "magik-storage-{name}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
