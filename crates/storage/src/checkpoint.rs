//! Snapshot checkpoints: compact on-disk images of a session's state.
//!
//! # File format
//!
//! ```text
//! [magic "MGKCKPT1": 8 bytes][version: u32 LE = 1]
//! [body_len: u32 LE][crc32(body): u32 LE]
//! [body: varint tcs_epoch, varint data_epoch,
//!        vocabulary, TCS set, instance — see magik_relalg::codec]
//! ```
//!
//! The materialized T_C model is deliberately **not** stored: it is a
//! deterministic function of (TCS set, facts) and is rebuilt by the
//! engine constructor on load, so a checkpoint can never disagree with
//! the model it implies.
//!
//! # Atomicity
//!
//! [`write`] serializes to a `.tmp` file in the same directory, fsyncs
//! it, renames it to its final epoch-stamped name
//! (`ckpt-<tcs>-<data>.snap`), and fsyncs the directory. A crash at any
//! point leaves either the previous generation intact or the new file
//! complete — never a half-written `.snap`. Stale `.tmp` files are swept
//! on store open.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use magik_completeness::codec::{decode_tcs, encode_tcs};
use magik_completeness::TcSet;
use magik_relalg::codec::{
    decode_instance, decode_vocabulary, encode_instance, encode_vocabulary, put_varint, Reader,
};
use magik_relalg::{Instance, Vocabulary};

use crate::crc::crc32;
use crate::wal::sync_dir;
use crate::StorageError;

const MAGIC: &[u8; 8] = b"MGKCKPT1";
const VERSION: u32 = 1;

/// A decoded checkpoint: everything needed to reconstruct an engine
/// session at the recorded epochs.
#[derive(Debug, Clone)]
pub struct CheckpointImage {
    /// The interner at checkpoint time (its fresh counter included, so
    /// recovered sessions cannot re-mint pre-crash scratch variables).
    pub vocab: Vocabulary,
    /// The table-completeness statements.
    pub tcs: TcSet,
    /// The stored facts.
    pub db: Instance,
    /// TCS epoch of the image.
    pub tcs_epoch: u64,
    /// Data epoch of the image.
    pub data_epoch: u64,
}

impl CheckpointImage {
    /// The image's position on the linear mutation history.
    pub fn epoch_sum(&self) -> u64 {
        self.tcs_epoch + self.data_epoch
    }
}

/// The final file name for an image at the given epochs.
pub(crate) fn checkpoint_path(dir: &Path, tcs_epoch: u64, data_epoch: u64) -> PathBuf {
    dir.join(format!("ckpt-{tcs_epoch:020}-{data_epoch:020}.snap"))
}

/// All checkpoints under `dir` as `(tcs_epoch, data_epoch, path)`,
/// sorted oldest-first by history position (epoch sum).
pub(crate) fn list_checkpoints(dir: &Path) -> std::io::Result<Vec<(u64, u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".snap"))
        else {
            continue;
        };
        let Some((te, de)) = stem.split_once('-') else {
            continue;
        };
        if let (Ok(te), Ok(de)) = (te.parse::<u64>(), de.parse::<u64>()) {
            found.push((te, de, entry.path()));
        }
    }
    found.sort_by_key(|&(te, de, _)| (te + de, te));
    Ok(found)
}

/// Writes `image` durably under `dir` (temp file + fsync + atomic rename
/// + directory fsync) and returns the final path.
pub(crate) fn write(dir: &Path, image: &CheckpointImage) -> std::io::Result<PathBuf> {
    let mut body = Vec::new();
    put_varint(&mut body, image.tcs_epoch);
    put_varint(&mut body, image.data_epoch);
    encode_vocabulary(&image.vocab, &mut body);
    encode_tcs(&image.tcs, &mut body);
    encode_instance(
        image.db.iter_facts().collect::<Vec<_>>().into_iter(),
        &mut body,
    );
    let mut bytes = Vec::with_capacity(body.len() + 24);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(
        &u32::try_from(body.len())
            .expect("checkpoint fits u32")
            .to_le_bytes(),
    );
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let final_path = checkpoint_path(dir, image.tcs_epoch, image.data_epoch);
    let tmp_path = dir.join(format!(
        "ckpt-{:020}-{:020}.tmp",
        image.tcs_epoch, image.data_epoch
    ));
    let mut tmp = File::create(&tmp_path)?;
    tmp.write_all(&bytes)?;
    tmp.sync_all()?;
    drop(tmp);
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Installs a checkpoint image received as raw file bytes — the snapshot
/// bootstrap of log-shipping replication. The bytes are written to a
/// temp file, fully validated by [`read`], and atomically renamed to the
/// epoch-stamped name they declare, so a torn or corrupt transfer can
/// never impersonate a valid checkpoint. Returns the image's epochs.
pub fn install_checkpoint(dir: &Path, bytes: &[u8]) -> Result<(u64, u64), StorageError> {
    std::fs::create_dir_all(dir)?;
    let tmp_path = dir.join("ckpt-install.tmp");
    let mut tmp = File::create(&tmp_path)?;
    tmp.write_all(bytes)?;
    tmp.sync_all()?;
    drop(tmp);
    let image = match read(&tmp_path) {
        Ok(image) => image,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }
    };
    let final_path = checkpoint_path(dir, image.tcs_epoch, image.data_epoch);
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok((image.tcs_epoch, image.data_epoch))
}

/// Reads and validates a checkpoint file. Truncation, CRC mismatches,
/// version skew and undecodable bodies all come back as
/// [`StorageError::Corrupt`].
pub(crate) fn read(path: &Path) -> Result<CheckpointImage, StorageError> {
    let corrupt = |detail: &str| StorageError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    };
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < 16 || &data[..8] != MAGIC {
        return Err(corrupt("bad checkpoint magic"));
    }
    let version = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
    if version != VERSION {
        return Err(corrupt("unsupported checkpoint version"));
    }
    if data.len() < 20 {
        return Err(corrupt("checkpoint header truncated"));
    }
    let body_len = u32::from_le_bytes([data[12], data[13], data[14], data[15]]) as usize;
    if data.len() - 20 != body_len {
        return Err(corrupt("checkpoint length mismatch"));
    }
    let crc = u32::from_le_bytes([data[16], data[17], data[18], data[19]]);
    let body = &data[20..];
    if crc32(body) != crc {
        return Err(corrupt("checkpoint CRC mismatch"));
    }
    let mut r = Reader::new(body);
    let mut parse = || -> Result<CheckpointImage, magik_relalg::codec::CodecError> {
        let tcs_epoch = r.varint()?;
        let data_epoch = r.varint()?;
        let vocab = decode_vocabulary(&mut r)?;
        let tcs = decode_tcs(&mut r, &vocab)?;
        let db = decode_instance(&mut r, &vocab)?;
        if !r.is_empty() {
            return Err(magik_relalg::codec::CodecError::Malformed(
                "trailing bytes in checkpoint body",
            ));
        }
        Ok(CheckpointImage {
            vocab,
            tcs,
            db,
            tcs_epoch,
            data_epoch,
        })
    };
    parse().map_err(|e| corrupt(&format!("undecodable checkpoint body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use magik_relalg::Fact;

    fn sample_image() -> CheckpointImage {
        let mut vocab = Vocabulary::new();
        let edge = vocab.pred("edge", 2);
        let mut db = Instance::new();
        db.insert(Fact::new(edge, vec![vocab.cst("a"), vocab.cst("b")]));
        db.insert(Fact::new(edge, vec![vocab.cst("b"), vocab.cst("c")]));
        let (x, y) = (vocab.var("X"), vocab.var("Y"));
        let tcs = TcSet::new(vec![magik_completeness::TcStatement::new(
            magik_relalg::Atom::new(
                edge,
                vec![magik_relalg::Term::Var(x), magik_relalg::Term::Var(y)],
            ),
            vec![],
        )]);
        CheckpointImage {
            vocab,
            tcs,
            db,
            tcs_epoch: 1,
            data_epoch: 2,
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let dir = test_dir("ckpt-roundtrip");
        let image = sample_image();
        let path = write(&dir, &image).unwrap();
        let back = read(&path).unwrap();
        assert_eq!(back.tcs_epoch, 1);
        assert_eq!(back.data_epoch, 2);
        assert_eq!(back.db, image.db);
        assert_eq!(back.tcs, image.tcs);
        assert_eq!(back.vocab.num_preds(), image.vocab.num_preds());
        // No temp files survive a successful write.
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
    }

    #[test]
    fn truncated_checkpoint_is_rejected_cleanly() {
        let dir = test_dir("ckpt-trunc");
        let path = write(&dir, &sample_image()).unwrap();
        let data = std::fs::read(&path).unwrap();
        for cut in [0, 4, 15, 23, data.len() / 2, data.len() - 1] {
            std::fs::write(&path, &data[..cut]).unwrap();
            let err = read(&path).unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let dir = test_dir("ckpt-flip");
        let path = write(&dir, &sample_image()).unwrap();
        let data = std::fs::read(&path).unwrap();
        for at in [24, data.len() / 2, data.len() - 1] {
            let mut copy = data.clone();
            copy[at] ^= 0x40;
            std::fs::write(&path, &copy).unwrap();
            assert!(read(&path).is_err(), "flip at {at} accepted");
        }
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let dir = test_dir("ckpt-version");
        let path = write(&dir, &sample_image()).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8] = 9; // version 9
        std::fs::write(&path, &data).unwrap();
        let err = read(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn listing_orders_by_history_position() {
        let dir = test_dir("ckpt-list");
        let mut image = sample_image();
        for (te, de) in [(0, 5), (2, 1), (1, 2)] {
            image.tcs_epoch = te;
            image.data_epoch = de;
            write(&dir, &image).unwrap();
        }
        let listed: Vec<(u64, u64)> = list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(te, de, _)| (te, de))
            .collect();
        assert_eq!(listed, vec![(1, 2), (2, 1), (0, 5)]);
    }
}
