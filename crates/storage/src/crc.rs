//! CRC-32 (IEEE 802.3) — the frame checksum of the WAL and checkpoint
//! formats. Table-driven, with the table built in a `const fn` so the
//! crate stays dependency-free.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 (IEEE) checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            copy[i] ^= 1;
            assert_ne!(crc32(&copy), base, "flip at byte {i} undetected");
            copy[i] ^= 1;
        }
    }
}
