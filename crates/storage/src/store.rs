//! The durable store: WAL + checkpoints + crash recovery, composed.
//!
//! # Recovery algorithm
//!
//! 1. Sweep stale `*.tmp` files (a crash mid-checkpoint leaves one; the
//!    atomic rename guarantees it is never a valid `.snap`).
//! 2. Load the **newest valid** checkpoint. A corrupt newest checkpoint
//!    falls back one generation (two are retained exactly for this); if
//!    checkpoints exist but none loads, recovery refuses with a clean
//!    corruption error rather than silently replaying from an empty
//!    state the truncated log can no longer reach.
//! 3. Scan WAL segments in sequence order. Records at or before the
//!    checkpoint's history position (epoch sum) are covered and skipped;
//!    the rest form the replay tail. Each tail op must advance exactly
//!    the epoch its kind implies (`compl` bumps the TCS epoch,
//!    `assert`/`retract` the data epoch) — any gap or mismatch is
//!    corruption, caught *before* any replay happens.
//! 4. A torn frame at the end of the **final** segment is discarded
//!    (counted in [`Recovery::discarded_bytes`]); the same bytes anywhere
//!    else are corruption, because rotation seals segments with fsync.
//!
//! Opening always starts a **fresh** segment — the store never appends
//! after a possibly-torn tail.

use std::path::{Path, PathBuf};

use crate::checkpoint::{self, CheckpointImage};
use crate::wal::{
    list_segments, scan_segment, sync_dir, Append, FsyncPolicy, OpKind, Wal, WalRecord,
};
use crate::StorageError;

/// Tuning knobs for a [`Store`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Rotate the WAL segment after roughly this many bytes.
    pub segment_bytes: u64,
    /// How many checkpoint generations to retain (at least 2, so a
    /// corrupt newest checkpoint can fall back without losing the log
    /// coverage truncation assumed).
    pub checkpoints_kept: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 1 << 20,
            checkpoints_kept: 2,
        }
    }
}

/// What recovery found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// The newest valid checkpoint, if any.
    pub checkpoint: Option<CheckpointImage>,
    /// The records past the checkpoint, to be replayed in order.
    pub tail: Vec<WalRecord>,
    /// Torn-tail bytes discarded from the final segment.
    pub discarded_bytes: u64,
    /// Corrupt checkpoint generations skipped before a valid one loaded.
    pub checkpoints_skipped: usize,
    /// WAL segments scanned.
    pub segments_scanned: usize,
}

impl Recovery {
    /// The epochs the recovered session must end at after replay.
    pub fn final_epochs(&self) -> (u64, u64) {
        for rec in self.tail.iter().rev() {
            if matches!(rec, WalRecord::Op { .. }) {
                return rec.epochs();
            }
        }
        self.checkpoint
            .as_ref()
            .map_or((0, 0), |c| (c.tcs_epoch, c.data_epoch))
    }

    /// The number of mutation ops in the replay tail (marks excluded).
    pub fn replayed_ops(&self) -> u64 {
        self.tail
            .iter()
            .filter(|r| matches!(r, WalRecord::Op { .. }))
            .count() as u64
    }
}

/// What one checkpoint call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointOutcome {
    /// `false` when the image's epochs already match the newest
    /// checkpoint on disk (nothing to do).
    pub written: bool,
    /// Old checkpoint generations pruned.
    pub checkpoints_removed: usize,
    /// WAL segments truncated (fully covered by the oldest retained
    /// checkpoint).
    pub segments_removed: usize,
}

/// An open durable store: recovered state plus a writable log.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    wal: Wal,
}

impl Store {
    /// Opens (creating if needed) the store under `dir`: sweeps stale
    /// temp files, recovers, and starts a fresh WAL segment for appends.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<(Store, Recovery), StorageError> {
        std::fs::create_dir_all(dir)?;
        sweep_tmp(dir)?;
        let recovery = recover(dir)?;
        let next_seq = list_segments(dir)?.last().map_or(0, |&(seq, _)| seq + 1);
        let wal = Wal::create(dir, next_seq, opts.fsync, opts.segment_bytes.max(64))?;
        Ok((
            Store {
                dir: dir.to_path_buf(),
                opts: StoreOptions {
                    checkpoints_kept: opts.checkpoints_kept.max(2),
                    ..opts
                },
                wal,
            },
            recovery,
        ))
    }

    /// Runs the recovery scan **without** touching the directory: no temp
    /// sweep, no new segment. The inspection path of `magik recover`.
    pub fn peek(dir: &Path) -> Result<Recovery, StorageError> {
        recover(dir)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record, honouring the fsync policy.
    pub fn append(&mut self, rec: &WalRecord) -> Result<Append, StorageError> {
        Ok(self.wal.append(rec)?)
    }

    /// Forces the log to stable storage regardless of policy.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        Ok(self.wal.sync()?)
    }

    /// All mutation-op records strictly past history position `from_sum`
    /// (an epoch sum), in append order — the catch-up read of log-shipping
    /// replication. Marks are skipped (they do not advance the history).
    ///
    /// Scans every segment tolerantly (torn tails discarded, like the
    /// recovery scan), so records pruned by checkpointing or lost to a
    /// pre-recovery crash simply do not appear; the caller must check the
    /// result starts at `from_sum + 1` and fall back to shipping a
    /// checkpoint when it does not.
    pub fn records_since(&self, from_sum: u64) -> Result<Vec<WalRecord>, StorageError> {
        let mut out = Vec::new();
        for (_, path) in list_segments(&self.dir)? {
            let scan = scan_segment(&path, true)?;
            for rec in scan.records {
                if matches!(rec, WalRecord::Op { .. }) && rec.epoch_sum() > from_sum {
                    out.push(rec);
                }
            }
        }
        Ok(out)
    }

    /// The newest checkpoint that validates, as `(tcs_epoch, data_epoch,
    /// raw file bytes)` — what a primary ships to bootstrap a replica too
    /// far behind the retained log. Corrupt generations are skipped, like
    /// in recovery.
    pub fn newest_checkpoint_raw(&self) -> Result<Option<(u64, u64, Vec<u8>)>, StorageError> {
        let ckpts = checkpoint::list_checkpoints(&self.dir)?;
        for (te, de, path) in ckpts.iter().rev() {
            if checkpoint::read(path).is_ok() {
                return Ok(Some((*te, *de, std::fs::read(path)?)));
            }
        }
        Ok(None)
    }

    /// Writes a checkpoint of `image`, prunes old generations, and
    /// truncates WAL segments fully covered by the **oldest retained**
    /// checkpoint. Skips entirely when the newest on-disk checkpoint
    /// already has the image's epochs.
    pub fn checkpoint(
        &mut self,
        image: &CheckpointImage,
    ) -> Result<CheckpointOutcome, StorageError> {
        let existing = checkpoint::list_checkpoints(&self.dir)?;
        if let Some(&(te, de, _)) = existing.last() {
            if (te, de) == (image.tcs_epoch, image.data_epoch) {
                return Ok(CheckpointOutcome::default());
            }
        }
        checkpoint::write(&self.dir, image)?;
        let mut outcome = CheckpointOutcome {
            written: true,
            ..CheckpointOutcome::default()
        };
        // Prune: keep the newest `checkpoints_kept` generations.
        let all = checkpoint::list_checkpoints(&self.dir)?;
        let keep_from = all.len().saturating_sub(self.opts.checkpoints_kept);
        for (_, _, path) in &all[..keep_from] {
            std::fs::remove_file(path)?;
            outcome.checkpoints_removed += 1;
        }
        // Truncate WAL segments covered by the *oldest retained*
        // checkpoint, so falling back one checkpoint generation always
        // still finds the log records it needs.
        let retained = &all[keep_from..];
        let cover_sum = retained.first().map_or(0, |&(te, de, _)| te + de);
        for (seq, path) in list_segments(&self.dir)? {
            if seq == self.wal.current_seq() {
                continue;
            }
            // Old segments may carry a discarded torn tail from a
            // pre-recovery crash; scan tolerantly, and when in doubt
            // (scan error) leave the segment alone.
            let Ok(scan) = scan_segment(&path, true) else {
                continue;
            };
            let covered = scan
                .records
                .last()
                .is_none_or(|rec| rec.epoch_sum() <= cover_sum);
            if covered {
                std::fs::remove_file(&path)?;
                outcome.segments_removed += 1;
            }
        }
        if outcome.checkpoints_removed + outcome.segments_removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(outcome)
    }
}

/// Deletes leftover `*.tmp` files from a crash mid-checkpoint.
fn sweep_tmp(dir: &Path) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

fn recover(dir: &Path) -> Result<Recovery, StorageError> {
    // Step 1: newest valid checkpoint, falling back over corrupt ones.
    let ckpts = checkpoint::list_checkpoints(dir)?;
    let mut image = None;
    let mut skipped = 0;
    for (_, _, path) in ckpts.iter().rev() {
        match checkpoint::read(path) {
            Ok(img) => {
                image = Some(img);
                break;
            }
            Err(StorageError::Corrupt { .. }) => skipped += 1,
            Err(e) => return Err(e),
        }
    }
    if image.is_none() && !ckpts.is_empty() {
        // Checkpoints were written, so earlier WAL segments may have been
        // truncated — replaying from scratch would silently diverge.
        return Err(StorageError::Corrupt {
            path: ckpts.last().expect("nonempty").2.clone(),
            detail: format!("all {} checkpoint generations are corrupt", ckpts.len()),
        });
    }
    let base = image
        .as_ref()
        .map_or((0, 0), |c| (c.tcs_epoch, c.data_epoch));
    let base_sum = base.0 + base.1;

    // Step 2: scan segments, collect the tail past the checkpoint.
    let segments = list_segments(dir)?;
    let mut recovery = Recovery {
        checkpoint: image,
        tail: Vec::new(),
        discarded_bytes: 0,
        checkpoints_skipped: skipped,
        segments_scanned: segments.len(),
    };
    let (mut te, mut de) = base;
    let last_index = segments.len().saturating_sub(1);
    for (i, (_, path)) in segments.iter().enumerate() {
        let scan = scan_segment(path, i == last_index)?;
        recovery.discarded_bytes += scan.torn_bytes;
        for rec in scan.records {
            if rec.epoch_sum() <= base_sum && recovery.tail.is_empty() {
                continue; // covered by the checkpoint
            }
            let corrupt = |detail: String| StorageError::Corrupt {
                path: path.clone(),
                detail,
            };
            match &rec {
                WalRecord::Op { kind, .. } => {
                    let expect = match kind {
                        OpKind::Compl => (te + 1, de),
                        OpKind::Assert | OpKind::Retract => (te, de + 1),
                    };
                    if rec.epochs() != expect {
                        return Err(corrupt(format!(
                            "epoch gap: expected {expect:?}, record carries {:?}",
                            rec.epochs()
                        )));
                    }
                    (te, de) = expect;
                    recovery.tail.push(rec);
                }
                WalRecord::Mark { .. } => {
                    if rec.epochs() != (te, de) {
                        return Err(corrupt(format!(
                            "mark epochs {:?} disagree with state ({te}, {de})",
                            rec.epochs()
                        )));
                    }
                    recovery.tail.push(rec);
                }
            }
        }
    }
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use magik_relalg::{Fact, Instance, Vocabulary};

    fn assert_op(i: u64, de: u64) -> WalRecord {
        WalRecord::Op {
            kind: OpKind::Assert,
            text: format!("edge(a{i}, b{i})."),
            tcs_epoch: 0,
            data_epoch: de,
        }
    }

    fn image_at(te: u64, de: u64) -> CheckpointImage {
        let mut vocab = Vocabulary::new();
        let edge = vocab.pred("edge", 2);
        let mut db = Instance::new();
        for i in 0..de {
            db.insert(Fact::new(
                edge,
                vec![vocab.cst(&format!("a{i}")), vocab.cst(&format!("b{i}"))],
            ));
        }
        CheckpointImage {
            vocab,
            tcs: magik_completeness::TcSet::new(Vec::new()),
            db,
            tcs_epoch: te,
            data_epoch: de,
        }
    }

    #[test]
    fn empty_store_recovers_empty() {
        let dir = test_dir("store-empty");
        let (_, recovery) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(recovery.checkpoint.is_none());
        assert!(recovery.tail.is_empty());
        assert_eq!(recovery.final_epochs(), (0, 0));
    }

    #[test]
    fn appends_survive_reopen() {
        let dir = test_dir("store-reopen");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        for i in 0..5 {
            store.append(&assert_op(i, i + 1)).unwrap();
        }
        store.flush().unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir, opts).unwrap();
        assert_eq!(recovery.replayed_ops(), 5);
        assert_eq!(recovery.final_epochs(), (0, 5));
        assert_eq!(recovery.discarded_bytes, 0);
    }

    #[test]
    fn checkpoint_covers_earlier_records() {
        let dir = test_dir("store-cover");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        for i in 0..5 {
            store.append(&assert_op(i, i + 1)).unwrap();
        }
        let outcome = store.checkpoint(&image_at(0, 5)).unwrap();
        assert!(outcome.written);
        for i in 5..7 {
            store.append(&assert_op(i, i + 1)).unwrap();
        }
        store.flush().unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir, opts).unwrap();
        assert_eq!(
            recovery
                .checkpoint
                .as_ref()
                .map(|c| (c.tcs_epoch, c.data_epoch)),
            Some((0, 5))
        );
        assert_eq!(recovery.replayed_ops(), 2);
        assert_eq!(recovery.final_epochs(), (0, 7));
    }

    #[test]
    fn checkpoint_is_idempotent_at_same_epochs() {
        let dir = test_dir("store-idem");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(store.checkpoint(&image_at(0, 3)).unwrap().written);
        assert!(!store.checkpoint(&image_at(0, 3)).unwrap().written);
    }

    #[test]
    fn retention_keeps_two_and_truncates_covered_segments() {
        let dir = test_dir("store-retain");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            segment_bytes: 64, // rotate roughly every couple of records
            checkpoints_kept: 2,
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        let mut de = 0;
        for round in 1..=3u64 {
            for _ in 0..4 {
                de += 1;
                store.append(&assert_op(de, de)).unwrap();
            }
            store.checkpoint(&image_at(0, de)).unwrap();
            let ckpts = checkpoint::list_checkpoints(&dir).unwrap();
            assert!(ckpts.len() <= 2, "round {round}: {ckpts:?}");
        }
        // Segments covered by the *older* retained checkpoint (0,8) are
        // gone; the recovery tail replays only what that coverage allows.
        drop(store);
        let (_, recovery) = Store::open(&dir, opts).unwrap();
        assert_eq!(recovery.checkpoint.as_ref().map(|c| c.data_epoch), Some(12));
        assert_eq!(recovery.replayed_ops(), 0);
        let remaining = list_segments(&dir).unwrap();
        for (_, path) in &remaining {
            let scan = scan_segment(path, true).unwrap();
            if let Some(last) = scan.records.last() {
                assert!(last.epoch_sum() > 8, "covered segment survived: {path:?}");
            }
        }
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_a_generation() {
        let dir = test_dir("store-fallback");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        for i in 0..4 {
            store.append(&assert_op(i, i + 1)).unwrap();
        }
        store.checkpoint(&image_at(0, 2)).unwrap();
        store.checkpoint(&image_at(0, 4)).unwrap();
        store.flush().unwrap();
        drop(store);
        // Corrupt the newest checkpoint.
        let newest = checkpoint::list_checkpoints(&dir).unwrap().pop().unwrap().2;
        let mut bytes = std::fs::read(&newest).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let (_, recovery) = Store::open(&dir, opts).unwrap();
        assert_eq!(recovery.checkpoints_skipped, 1);
        assert_eq!(recovery.checkpoint.as_ref().map(|c| c.data_epoch), Some(2));
        // The log still covers everything past the older checkpoint.
        assert_eq!(recovery.replayed_ops(), 2);
        assert_eq!(recovery.final_epochs(), (0, 4));
    }

    #[test]
    fn all_checkpoints_corrupt_is_a_clean_error() {
        let dir = test_dir("store-allcorrupt");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.checkpoint(&image_at(0, 1)).unwrap();
        drop(store);
        for (_, _, path) in checkpoint::list_checkpoints(&dir).unwrap() {
            std::fs::write(&path, b"garbage").unwrap();
        }
        let err = Store::open(&dir, StoreOptions::default()).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("checkpoint"), "{err}");
    }

    #[test]
    fn epoch_gap_in_tail_is_corruption() {
        let dir = test_dir("store-gap");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        store.append(&assert_op(0, 1)).unwrap();
        store.append(&assert_op(1, 3)).unwrap(); // skips epoch 2
        store.flush().unwrap();
        drop(store);
        let err = Store::open(&dir, opts).unwrap_err();
        assert!(err.to_string().contains("epoch gap"), "{err}");
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let dir = test_dir("store-tmp");
        std::fs::write(dir.join("ckpt-00-00.tmp"), b"half a checkpoint").unwrap();
        let (_, recovery) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(recovery.checkpoint.is_none());
        assert!(!dir.join("ckpt-00-00.tmp").exists());
    }

    #[test]
    fn mark_records_verify_but_do_not_advance() {
        let dir = test_dir("store-mark");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        store.append(&assert_op(0, 1)).unwrap();
        store
            .append(&WalRecord::Mark {
                tcs_epoch: 0,
                data_epoch: 1,
            })
            .unwrap();
        store.flush().unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir, opts).unwrap();
        assert_eq!(recovery.replayed_ops(), 1);
        assert_eq!(recovery.tail.len(), 2);
        assert_eq!(recovery.final_epochs(), (0, 1));
    }

    #[test]
    fn records_since_returns_the_tail_past_a_position() {
        let dir = test_dir("store-since");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            segment_bytes: 64, // force rotation across several segments
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        for i in 0..6 {
            store.append(&assert_op(i, i + 1)).unwrap();
        }
        store
            .append(&WalRecord::Mark {
                tcs_epoch: 0,
                data_epoch: 6,
            })
            .unwrap();
        store.flush().unwrap();
        let recs = store.records_since(2).unwrap();
        assert_eq!(recs.len(), 4, "{recs:?}");
        for (i, rec) in recs.iter().enumerate() {
            assert!(matches!(rec, WalRecord::Op { .. }));
            assert_eq!(rec.epoch_sum(), 3 + i as u64);
        }
        assert_eq!(store.records_since(0).unwrap().len(), 6);
        assert!(store.records_since(6).unwrap().is_empty());
        assert!(store.records_since(99).unwrap().is_empty());
    }

    #[test]
    fn pruned_log_is_a_detectable_gap_and_ships_as_a_checkpoint() {
        let dir = test_dir("store-ship");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            segment_bytes: 64,
            checkpoints_kept: 2,
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        let mut de = 0;
        for _ in 0..3 {
            for _ in 0..4 {
                de += 1;
                store.append(&assert_op(de, de)).unwrap();
            }
            store.checkpoint(&image_at(0, de)).unwrap();
        }
        // Early records were pruned: a replica starting from 0 sees a gap.
        let recs = store.records_since(0).unwrap();
        assert!(
            recs.first().is_none_or(|r| r.epoch_sum() > 1),
            "pruning left record 1 in place: {recs:?}"
        );
        // The newest checkpoint ships as raw bytes and installs cleanly
        // into a fresh replica directory, which then recovers from it.
        let (te, de_ck, bytes) = store.newest_checkpoint_raw().unwrap().expect("checkpoint");
        assert_eq!((te, de_ck), (0, 12));
        let replica_dir = test_dir("store-ship-replica");
        let installed = checkpoint::install_checkpoint(&replica_dir, &bytes).unwrap();
        assert_eq!(installed, (0, 12));
        let (_, recovery) = Store::open(&replica_dir, opts).unwrap();
        assert_eq!(recovery.final_epochs(), (0, 12));
        assert_eq!(recovery.replayed_ops(), 0);
    }

    #[test]
    fn install_checkpoint_rejects_garbage_without_leaving_files() {
        let dir = test_dir("store-badinstall");
        let err = checkpoint::install_checkpoint(&dir, b"not a checkpoint").unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
    }

    #[test]
    fn mismatched_mark_is_corruption() {
        let dir = test_dir("store-badmark");
        let opts = StoreOptions {
            fsync: FsyncPolicy::Never,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        store.append(&assert_op(0, 1)).unwrap();
        store
            .append(&WalRecord::Mark {
                tcs_epoch: 1,
                data_epoch: 1,
            })
            .unwrap();
        store.flush().unwrap();
        drop(store);
        let err = Store::open(&dir, opts).unwrap_err();
        assert!(err.to_string().contains("mark"), "{err}");
    }
}
