//! The append-only, CRC-framed, segment-rotated write-ahead log.
//!
//! # Frame layout
//!
//! A segment file is an 8-byte magic header (`MGKWAL01`) followed by
//! frames:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! The payload is a tagged record ([`WalRecord`]): mutation ops carry the
//! op kind, the request text, and the **post-op** epoch pair; marks carry
//! the current epoch pair without an op (written e.g. on clean shutdown).
//! Because every op bumps exactly one epoch by one, the epoch *sum* is a
//! position on the session's linear history — recovery uses it to skip
//! records a checkpoint already covers and to detect gaps.
//!
//! # Torn tails
//!
//! Only the **final** segment of a log may end mid-frame: rotation syncs
//! the outgoing segment (and the directory) regardless of the fsync
//! policy, and a reopened log always starts a fresh segment. A scanner
//! therefore treats an incomplete or CRC-mismatching frame at the end of
//! the final segment as a torn tail (discarded, byte count reported) and
//! the same condition anywhere else as hard corruption.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use magik_relalg::codec::{put_str, put_varint, CodecError, Reader};

use crate::crc::crc32;
use crate::StorageError;

/// Magic bytes opening every WAL segment file.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"MGKWAL01";

/// The largest payload a frame may declare. Request lines are capped at
/// 1 MiB by the server; anything past this is corrupt or torn. Public so
/// the replication stream (which reuses the frame layout over TCP) can
/// enforce the same bound.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

/// When (if ever) appends flush to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: an acknowledged op is durable.
    Always,
    /// Fsync at most once per interval: bounded data loss, high
    /// throughput.
    Interval(Duration),
    /// Never fsync explicitly; the OS flushes when it pleases. Survives
    /// process crashes (the kernel holds the pages) but not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, `interval` (default 100 ms) or
    /// `interval:MILLIS`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(Duration::from_millis(100))),
            _ => {
                let ms: u64 = s.strip_prefix("interval:")?.parse().ok()?;
                Some(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }
}

/// The mutation verbs the log records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `assert <atom>` — fact insertion.
    Assert,
    /// `retract <atom>` — fact removal.
    Retract,
    /// `compl <tcs>` — TC-statement addition.
    Compl,
}

impl OpKind {
    fn tag(self) -> u8 {
        match self {
            OpKind::Assert => 0,
            OpKind::Retract => 1,
            OpKind::Compl => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<OpKind> {
        match tag {
            0 => Some(OpKind::Assert),
            1 => Some(OpKind::Retract),
            2 => Some(OpKind::Compl),
            _ => None,
        }
    }

    /// The protocol verb this kind replays as.
    pub fn verb(self) -> &'static str {
        match self {
            OpKind::Assert => "assert",
            OpKind::Retract => "retract",
            OpKind::Compl => "compl",
        }
    }
}

/// One logged record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A mutation op: the request remainder after the verb (e.g.
    /// `edge(a, b).`) plus the epochs *after* the op applied.
    Op {
        /// Which mutation verb.
        kind: OpKind,
        /// The textual request remainder, replayed through the engine's
        /// normal parse/apply path.
        text: String,
        /// TCS epoch after this op.
        tcs_epoch: u64,
        /// Data epoch after this op.
        data_epoch: u64,
    },
    /// An epoch marker: records the current epochs without an op (clean
    /// shutdown, recovery boundary). Does not advance the history.
    Mark {
        /// Current TCS epoch.
        tcs_epoch: u64,
        /// Current data epoch.
        data_epoch: u64,
    },
}

const TAG_OP: u8 = 1;
const TAG_MARK: u8 = 2;

impl WalRecord {
    /// The `(tcs_epoch, data_epoch)` pair the record carries.
    pub fn epochs(&self) -> (u64, u64) {
        match *self {
            WalRecord::Op {
                tcs_epoch,
                data_epoch,
                ..
            }
            | WalRecord::Mark {
                tcs_epoch,
                data_epoch,
            } => (tcs_epoch, data_epoch),
        }
    }

    /// The record's position on the linear history: each op bumps exactly
    /// one epoch by one, so the sum increments by exactly one per op.
    pub fn epoch_sum(&self) -> u64 {
        let (t, d) = self.epochs();
        t + d
    }

    /// Serializes the record as a frame payload. Log-shipping replication
    /// sends these over TCP wrapped in the same
    /// `[payload_len: u32 LE][crc32: u32 LE][payload]` framing that
    /// segment files use, so a replica validates network frames with the
    /// exact code path that validates disk frames.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode(&mut out);
        out
    }

    /// Decodes a frame payload produced by [`WalRecord::encode_payload`]
    /// (or the WAL writer). The caller is expected to have verified the
    /// frame CRC already; this rejects structurally invalid payloads.
    pub fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
        WalRecord::decode(payload).map_err(|e| e.to_string())
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Op {
                kind,
                text,
                tcs_epoch,
                data_epoch,
            } => {
                out.push(TAG_OP);
                out.push(kind.tag());
                put_varint(out, *tcs_epoch);
                put_varint(out, *data_epoch);
                put_str(out, text);
            }
            WalRecord::Mark {
                tcs_epoch,
                data_epoch,
            } => {
                out.push(TAG_MARK);
                put_varint(out, *tcs_epoch);
                put_varint(out, *data_epoch);
            }
        }
    }

    fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            TAG_OP => {
                let kind =
                    OpKind::from_tag(r.u8()?).ok_or(CodecError::Malformed("unknown op kind"))?;
                let tcs_epoch = r.varint()?;
                let data_epoch = r.varint()?;
                let text = r.str()?.to_owned();
                WalRecord::Op {
                    kind,
                    text,
                    tcs_epoch,
                    data_epoch,
                }
            }
            TAG_MARK => WalRecord::Mark {
                tcs_epoch: r.varint()?,
                data_epoch: r.varint()?,
            },
            _ => return Err(CodecError::Malformed("unknown record tag")),
        };
        if !r.is_empty() {
            return Err(CodecError::Malformed("trailing bytes in record"));
        }
        Ok(rec)
    }
}

/// The path of segment `seq` under `dir`.
pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:020}.log"))
}

/// All WAL segments under `dir`, sorted by sequence number.
pub(crate) fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Fsyncs a directory so renames/creations/removals inside it are durable.
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// What scanning one segment found.
#[derive(Debug, Default)]
pub(crate) struct SegmentScan {
    /// The CRC-valid, decodable records, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail discarded (0 when the segment ends cleanly).
    pub torn_bytes: u64,
}

/// Scans a segment file. `allow_torn` is `true` only for the final
/// segment of a log: there an incomplete or CRC-mismatching frame at the
/// end is a torn tail (discarded and counted), anywhere else it is hard
/// corruption. A frame whose CRC matches but whose payload does not
/// decode is always corruption — the writer never produced such bytes.
pub(crate) fn scan_segment(path: &Path, allow_torn: bool) -> Result<SegmentScan, StorageError> {
    let corrupt = |detail: String| StorageError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < SEGMENT_MAGIC.len() || &data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        // A header shorter than the magic can only be a torn first write.
        if allow_torn && data.len() < SEGMENT_MAGIC.len() {
            return Ok(SegmentScan {
                records: Vec::new(),
                torn_bytes: data.len() as u64,
            });
        }
        return Err(corrupt("bad segment magic".to_string()));
    }
    let mut scan = SegmentScan::default();
    let mut pos = SEGMENT_MAGIC.len();
    while pos < data.len() {
        let frame = parse_frame(&data[pos..]);
        match frame {
            Ok((payload, frame_len)) => match WalRecord::decode(payload) {
                Ok(rec) => {
                    scan.records.push(rec);
                    pos += frame_len;
                }
                Err(e) => return Err(corrupt(format!("undecodable record at byte {pos}: {e}"))),
            },
            Err(why) => {
                if allow_torn {
                    scan.torn_bytes = (data.len() - pos) as u64;
                    return Ok(scan);
                }
                return Err(corrupt(format!("{why} at byte {pos} of a sealed segment")));
            }
        }
    }
    Ok(scan)
}

/// Parses one frame from the head of `data`, returning the payload slice
/// and the total frame length, or a reason the frame is invalid (which at
/// the tail of the final segment means "torn").
fn parse_frame(data: &[u8]) -> Result<(&[u8], usize), &'static str> {
    if data.len() < 8 {
        return Err("incomplete frame header");
    }
    let len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    let crc = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    if len == 0 || len > MAX_FRAME_PAYLOAD {
        return Err("implausible frame length");
    }
    let len = len as usize;
    if data.len() < 8 + len {
        return Err("incomplete frame payload");
    }
    let payload = &data[8..8 + len];
    if crc32(payload) != crc {
        return Err("frame CRC mismatch");
    }
    Ok((payload, 8 + len))
}

/// The result of one append.
#[derive(Debug, Clone, Copy)]
pub struct Append {
    /// Bytes written for the frame.
    pub bytes: u64,
    /// Whether the append triggered an fsync.
    pub synced: bool,
}

/// The writable end of the log: the current segment plus rotation and
/// fsync policy.
#[derive(Debug)]
pub(crate) struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    seq: u64,
    file: File,
    written: u64,
    last_sync: Instant,
    dirty: bool,
}

impl Wal {
    /// Creates segment `seq` under `dir` and returns a writer positioned
    /// on it. Fails if the segment already exists (sequence numbers are
    /// never reused).
    pub fn create(
        dir: &Path,
        seq: u64,
        policy: FsyncPolicy,
        segment_bytes: u64,
    ) -> std::io::Result<Wal> {
        let path = segment_path(dir, seq);
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(SEGMENT_MAGIC)?;
        // The segment must exist durably before anything in it is relied
        // on; sync data + directory once at creation.
        file.sync_all()?;
        sync_dir(dir)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            policy,
            segment_bytes,
            seq,
            file,
            written: SEGMENT_MAGIC.len() as u64,
            last_sync: Instant::now(),
            dirty: false,
        })
    }

    /// The sequence number of the segment currently being written.
    pub fn current_seq(&self) -> u64 {
        self.seq
    }

    /// Appends one record, rotating first if the current segment is full,
    /// and syncing according to the fsync policy.
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<Append> {
        if self.written >= self.segment_bytes {
            self.rotate()?;
        }
        let mut payload = Vec::with_capacity(64);
        rec.encode(&mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("payload fits u32")
                .to_le_bytes(),
        );
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.written += frame.len() as u64;
        self.dirty = true;
        let synced = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(d) => self.last_sync.elapsed() >= d,
            FsyncPolicy::Never => false,
        };
        if synced {
            self.sync()?;
        }
        Ok(Append {
            bytes: frame.len() as u64,
            synced,
        })
    }

    /// Flushes the current segment to stable storage (regardless of
    /// policy). No-op when nothing unsynced is pending.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Seals the current segment (sync data + directory — so only the
    /// *final* segment of a log can ever be torn) and starts the next one.
    fn rotate(&mut self) -> std::io::Result<()> {
        self.file.sync_all()?;
        let next = Wal::create(&self.dir, self.seq + 1, self.policy, self.segment_bytes)?;
        *self = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    fn op(kind: OpKind, text: &str, te: u64, de: u64) -> WalRecord {
        WalRecord::Op {
            kind,
            text: text.to_string(),
            tcs_epoch: te,
            data_epoch: de,
        }
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval"),
            Some(FsyncPolicy::Interval(Duration::from_millis(100)))
        );
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Some(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::parse("interval:abc"), None);
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let dir = test_dir("wal-roundtrip");
        let records = vec![
            op(OpKind::Assert, "edge(a, b).", 0, 1),
            op(OpKind::Compl, "edge(X, Y) ; true.", 1, 1),
            op(OpKind::Retract, "edge(a, b).", 1, 2),
            WalRecord::Mark {
                tcs_epoch: 1,
                data_epoch: 2,
            },
        ];
        let mut wal = Wal::create(&dir, 0, FsyncPolicy::Never, 1 << 20).unwrap();
        for rec in &records {
            wal.append(rec).unwrap();
        }
        wal.sync().unwrap();
        let scan = scan_segment(&segment_path(&dir, 0), true).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_discarded_only_in_final_segment() {
        let dir = test_dir("wal-torn");
        let mut wal = Wal::create(&dir, 0, FsyncPolicy::Never, 1 << 20).unwrap();
        wal.append(&op(OpKind::Assert, "edge(a, b).", 0, 1))
            .unwrap();
        wal.append(&op(OpKind::Assert, "edge(b, c).", 0, 2))
            .unwrap();
        wal.sync().unwrap();
        let path = segment_path(&dir, 0);
        // Tear the last frame: chop 3 bytes off the end.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let scan = scan_segment(&path, true).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
        // The same bytes in a sealed (non-final) segment are corruption.
        let err = scan_segment(&path, false).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn crc_flip_mid_log_is_corruption_even_when_torn_allowed_elsewhere() {
        let dir = test_dir("wal-crcflip");
        let mut wal = Wal::create(&dir, 0, FsyncPolicy::Never, 1 << 20).unwrap();
        wal.append(&op(OpKind::Assert, "edge(a, b).", 0, 1))
            .unwrap();
        wal.append(&op(OpKind::Assert, "edge(b, c).", 0, 2))
            .unwrap();
        wal.sync().unwrap();
        let path = segment_path(&dir, 0);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte of the FIRST frame: the scanner stops there.
        data[SEGMENT_MAGIC.len() + 9] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        // With torn allowed the whole remainder is "tail" — both records
        // discarded, which recovery later cross-checks against epochs.
        let scan = scan_segment(&path, true).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert!(scan.torn_bytes > 0);
        assert!(scan_segment(&path, false).is_err());
    }

    #[test]
    fn rotation_seals_segments() {
        let dir = test_dir("wal-rotate");
        // Tiny cap: every append after the first rotates.
        let mut wal = Wal::create(&dir, 0, FsyncPolicy::Never, 16).unwrap();
        for i in 0..4u64 {
            wal.append(&op(OpKind::Assert, &format!("edge(a{i}, b)."), 0, i + 1))
                .unwrap();
        }
        wal.sync().unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 4, "{segments:?}");
        let mut all = Vec::new();
        let last = segments.len() - 1;
        for (i, (_, path)) in segments.iter().enumerate() {
            all.extend(scan_segment(path, i == last).unwrap().records);
        }
        assert_eq!(all.len(), 4);
        assert_eq!(all[3].epochs(), (0, 4));
    }

    #[test]
    fn bad_magic_is_corruption() {
        let dir = test_dir("wal-magic");
        let path = segment_path(&dir, 0);
        std::fs::write(&path, b"NOTMAGIK????????").unwrap();
        assert!(scan_segment(&path, true).is_err());
    }

    #[test]
    fn undecodable_payload_is_corruption_even_at_tail() {
        let dir = test_dir("wal-baddec");
        let path = segment_path(&dir, 0);
        let payload = [99u8, 1, 2, 3]; // unknown record tag
        let mut data = SEGMENT_MAGIC.to_vec();
        data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        data.extend_from_slice(&crc32(&payload).to_le_bytes());
        data.extend_from_slice(&payload);
        std::fs::write(&path, &data).unwrap();
        let err = scan_segment(&path, true).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }
}
