//! End-to-end tests for the beyond-the-paper extensions, all through the
//! text syntax: integrity constraints (domains + keys), the answering
//! layer, explanations and lints working together.

use magik::semantics::IncompleteDatabase;
use magik::{
    answers, classify_answers, count_bounds, explain_check, is_complete, is_complete_under, lint,
    mcg_under, parse_document, publishable_counts, render_explanation, DisplayWith, Vocabulary,
};

#[test]
fn domain_and_key_constraints_combine_through_the_parser() {
    let mut v = Vocabulary::new();
    let doc = parse_document(
        "domain class(_, _, _, D) in {halfDay, fullDay}.
         key pupil(N, _, _).
         compl class(C, S, L, D) ; true.
         compl pupil(N, C, S) ; class(C, S, L, halfDay).
         compl pupil(N, C, S) ; class(C, S, L, fullDay).
         % The second pupil atom has a constant code, so it cannot fold
         % classically; the key merges it, then the domain covers the day.
         query q(N) :- pupil(N, C, S), class(C, S, L, D), pupil(N, c9, S2).",
        &mut v,
    )
    .unwrap();
    let q = &doc.queries[0];
    assert!(!is_complete(q, &doc.tcs));
    assert!(is_complete_under(q, &doc.tcs, &doc.constraints));
    // Constrained MCG: the chased query itself (complete as-is).
    let m = mcg_under(q, &doc.tcs, &doc.constraints).unwrap();
    assert_eq!(m.size(), 2, "the two pupil atoms merged under the key");
}

#[test]
fn answering_layer_matches_semantics_on_parsed_scenarios() {
    let mut v = Vocabulary::new();
    let doc = parse_document(
        "compl school(S, primary, D) ; true.
         compl pupil(N, C, S) ; school(S, T, merano).
         compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
         query q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).
         fact school(g, primary, merano).
         fact pupil(p1, c, g).
         fact pupil(p2, c, g).
         fact pupil(p3, c, g).
         fact learns(p1, english).
         fact learns(p2, ladin).
         fact learns(p3, english).
         fact learns(p3, german).",
        &mut v,
    )
    .unwrap();
    let q = &doc.queries[0];
    // The facts are the IDEAL state; the minimal completion drops the
    // non-English learns records.
    let db = IncompleteDatabase::minimal_completion(doc.facts.clone(), &doc.tcs);
    assert!(db.satisfies_all(&doc.tcs));

    let report = classify_answers(q, &doc.tcs, db.available()).unwrap();
    // p1 and p3 are certain (english); p2 possible (its learns dropped).
    assert_eq!(report.certain.len(), 2);
    assert_eq!(report.possible.as_ref().unwrap().len(), 1);
    let bounds = count_bounds(q, &doc.tcs, db.available()).unwrap();
    let truth = answers(q, db.ideal()).unwrap().len();
    assert_eq!(truth, 3);
    assert_eq!((bounds.lower, bounds.upper), (2, Some(3)));

    // The publishable statistic (English learners) is exact.
    let rows = publishable_counts(q, &doc.tcs, &mut v, db.available(), 0).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].count, 2);
    let ideal_count = answers(&rows[0].query, db.ideal()).unwrap().len();
    assert_eq!(rows[0].count, ideal_count);
}

#[test]
fn explanations_and_lints_cover_a_flawed_document() {
    let mut v = Vocabulary::new();
    let doc = parse_document(
        "compl pupil(N, C, S) ; registry(N).
         query q(N) :- pupil(N, C, S), learns(N, L).",
        &mut v,
    )
    .unwrap();
    let q = &doc.queries[0];
    // Lints: registry heads no statement.
    let lints = lint(&doc.tcs);
    assert!(lints
        .iter()
        .any(|l| matches!(l, magik::Lint::UnguaranteeableCondition { .. })));
    // Explanation: both atoms unguaranteed (pupil's condition has no
    // registry atom in the body; learns has no statement at all).
    let e = explain_check(q, &doc.tcs);
    assert!(!e.complete);
    assert_eq!(e.unguaranteed().count(), 2);
    let rendered = render_explanation(q, &doc.tcs, &e, &v);
    assert!(rendered.contains("INCOMPLETE"));
    assert!(rendered.contains("learns(N, L)"));
    // And the whole pipeline stays displayable.
    assert!(q.display(&v).to_string().starts_with("q(N)"));
}
