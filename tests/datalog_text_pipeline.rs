//! Text-to-engine pipeline: Datalog programs written in the surface
//! syntax, evaluated against facts from the same syntax, cross-checked
//! against the completeness reasoner's own encoding.

use magik::{parse_document, parse_instance, parse_rules, tc_apply, Vocabulary};

#[test]
fn textual_program_evaluates() {
    let mut v = Vocabulary::new();
    let program = parse_rules(
        "reach(X) :- start(X).
         reach(Y) :- reach(X), edge(X, Y).
         stuck(X) :- node(X), not reach(X).",
        &mut v,
    )
    .unwrap();
    let edb = parse_instance(
        "start(a). node(a). node(b). node(c). node(d).
         edge(a, b). edge(b, c). edge(d, d).",
        &mut v,
    )
    .unwrap();
    let model = program.eval_semi_naive(&edb).model;
    let stuck = v.lookup_pred("stuck", 1).unwrap();
    let rel = model.relation(stuck).unwrap();
    assert_eq!(rel.len(), 1);
    assert!(rel.contains(&[v.cst("d")]));
}

#[test]
fn textual_tc_rules_match_the_reasoners_encoding() {
    // Write the Section 5 rules for the running example by hand in the
    // text syntax and check they compute the same available state as the
    // reasoner's own tc_apply on the same data.
    let mut v = Vocabulary::new();
    let doc = parse_document(
        "compl school(S, primary, D) ; true.
         compl pupil(N, C, S) ; school(S, T, merano).
         compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
         fact school(goethe, primary, merano).
         fact school(verdi, middle, merano).
         fact pupil(ada, c1, goethe).
         fact pupil(bo, c2, verdi).
         fact learns(ada, english).
         fact learns(bo, english).
         fact learns(ada, ladin).",
        &mut v,
    )
    .unwrap();

    let program = parse_rules(
        "school_a(S, primary, D) :- school_i(S, primary, D).
         pupil_a(N, C, S) :- pupil_i(N, C, S), school_i(S, T, merano).
         learns_a(N, english) :- learns_i(N, english), pupil_i(N, C, S), school_i(S, primary, D).",
        &mut v,
    )
    .unwrap();
    // Load facts as _i relations.
    let mut edb = magik::Instance::new();
    for fact in doc.facts.iter_facts() {
        let name = format!("{}_i", v.pred_name(fact.pred));
        let pred = v.pred(&name, fact.arity());
        edb.insert(magik::Fact::new(pred, fact.args));
    }
    let model = program.eval_semi_naive(&edb).model;

    // Compare with the reasoner's direct operator, relation by relation.
    let direct = tc_apply(&doc.tcs, &doc.facts);
    for orig in ["school", "pupil", "learns"] {
        let arity = if orig == "learns" { 2 } else { 3 };
        let direct_rel = direct
            .relation(v.lookup_pred(orig, arity).unwrap())
            .map_or(0, magik::relalg::Relation::len);
        let text_rel = v
            .lookup_pred(&format!("{orig}_a"), arity)
            .and_then(|p| model.relation(p))
            .map_or(0, magik::relalg::Relation::len);
        assert_eq!(direct_rel, text_rel, "relation {orig}");
    }
    // Concretely: verdi is not primary, so bo's pupil record is
    // guaranteed (merano school!) but bo's english record is not.
    let pupil_a = v.lookup_pred("pupil_a", 3).unwrap();
    let learns_a = v.lookup_pred("learns_a", 2).unwrap();
    assert!(model
        .relation(pupil_a)
        .unwrap()
        .contains(&[v.cst("bo"), v.cst("c2"), v.cst("verdi")]));
    assert!(!model
        .relation(learns_a)
        .unwrap()
        .contains(&[v.cst("bo"), v.cst("english")]));
}
