//! Every worked example of the paper, end to end through the text syntax.
//!
//! Each test cites the example/therorem it reproduces; together they form
//! an executable transcript of the paper.

use magik::semantics::IncompleteDatabase;
use magik::{
    answers, are_equivalent, g_op, is_complete, is_contained_in, k_mcs, mcg, mcis, minimize,
    parse_document, parse_instance, parse_query, tc_apply, DisplayWith, KMcsOptions, TcSet,
    Vocabulary,
};

const SCHOOL_TCS: &str = "
    compl school(S, primary, D) ; true.
    compl pupil(N, C, S) ; school(S, T, merano).
    compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
";

fn school(vocab: &mut Vocabulary) -> TcSet {
    parse_document(SCHOOL_TCS, vocab).unwrap().tcs
}

/// Example 1: the satisfaction of C_sp and the violation of C_pb on the
/// two-fact incomplete database.
#[test]
fn example_1_satisfaction() {
    let mut v = Vocabulary::new();
    let tcs = school(&mut v);
    let available = parse_instance("school(goethe, primary, merano).", &mut v).unwrap();
    let mut ideal = available.clone();
    ideal.extend_from(&parse_instance("pupil(john, 1, goethe).", &mut v).unwrap());
    let db = IncompleteDatabase::new(ideal, available).unwrap();
    assert!(db.satisfies(&tcs.statements()[0]), "C_sp holds");
    assert!(!db.satisfies(&tcs.statements()[1]), "C_pb is violated");
}

/// Example 1 (continued): Q_ppb is complete, Q_pbl is not.
#[test]
fn example_1_query_completeness() {
    let mut v = Vocabulary::new();
    let tcs = school(&mut v);
    let q_ppb = parse_query(
        "q(N) :- pupil(N, C, S), school(S, primary, merano).",
        &mut v,
    )
    .unwrap();
    let q_pbl = parse_query(
        "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).",
        &mut v,
    )
    .unwrap();
    assert!(is_complete(&q_ppb, &tcs));
    assert!(!is_complete(&q_pbl, &tcs));
}

/// Example 4: the reasoning behind Theorem 3 — over the canonical database
/// of Q_ppb, T_C retains both atoms and the frozen head is retrieved.
#[test]
fn example_4_canonical_reasoning() {
    let mut v = Vocabulary::new();
    let tcs = school(&mut v);
    let q = parse_query(
        "q(N) :- pupil(N, C, S), school(S, primary, merano).",
        &mut v,
    )
    .unwrap();
    let frozen = magik::canonical_database(&q);
    let guaranteed = tc_apply(&tcs, &frozen);
    assert_eq!(guaranteed, frozen, "every frozen atom is guaranteed");
}

/// Example 5: dropping the learns atom generalizes Q_pbl into the complete
/// Q_ppb; substituting english specializes it into a complete query.
#[test]
fn example_5_generalization_and_specialization() {
    let mut v = Vocabulary::new();
    let tcs = school(&mut v);
    let q_pbl = parse_query(
        "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).",
        &mut v,
    )
    .unwrap();
    let q_gen = parse_query(
        "q(N) :- pupil(N, C, S), school(S, primary, merano).",
        &mut v,
    )
    .unwrap();
    let q_spec = parse_query(
        "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, english).",
        &mut v,
    )
    .unwrap();
    let m = mcg(&q_pbl, &tcs).unwrap();
    assert!(are_equivalent(&m, &q_gen));
    assert!(is_complete(&q_spec, &tcs));
    assert!(is_contained_in(&q_spec, &q_pbl));
}

/// The counterexample after Lemma 9: completeness of a *non-minimal*
/// query is not preserved under instantiation.
#[test]
fn lemma_9_nonminimal_counterexample() {
    let mut v = Vocabulary::new();
    let tcs = parse_document("compl r(X, a) ; true.", &mut v).unwrap().tcs;
    let q = parse_query("q(X) :- r(X, a), r(X, Y).", &mut v).unwrap();
    assert!(is_complete(&q, &tcs));
    // α = {Y -> c}:
    let aq = parse_query("q(X) :- r(X, a), r(X, c).", &mut v).unwrap();
    assert!(!is_complete(&aq, &tcs));
    // Minimality is the missing hypothesis:
    assert!(!magik::relalg::is_minimal(&q));
    assert!(is_complete(&minimize(&q), &tcs));
}

/// The G_C illustration implicit in Section 5: the Datalog encoding of the
/// running example derives pupil@a facts exactly for merano pupils.
#[test]
fn section_5_datalog_encoding() {
    let mut v = Vocabulary::new();
    let tcs = school(&mut v);
    let db = parse_instance(
        "pupil(n1, c1, goethe). school(goethe, primary, merano).
         pupil(n2, c2, dante). school(dante, primary, bolzano).",
        &mut v,
    )
    .unwrap();
    let direct = tc_apply(&tcs, &db);
    let datalog = magik::tc_apply_datalog(&tcs, &db, &mut v);
    assert_eq!(direct, datalog);
    // Both schools are primary (C_sp) but only the goethe pupil survives.
    let survivors: Vec<String> = direct
        .iter_facts()
        .map(|f| f.display(&v).to_string())
        .collect();
    assert!(survivors.contains(&"pupil(n1, c1, goethe)".to_owned()));
    assert!(!survivors.iter().any(|s| s.contains("n2")));
}

/// Example 22 / 24: γ = {L → english} is a complete unifier; the MCI of
/// Q_pbl; and the more specific complete instantiation of Example 24 is
/// contained in γ·Q_pbl.
#[test]
fn examples_22_and_24_mci() {
    let mut v = Vocabulary::new();
    let tcs = school(&mut v);
    let q_pbl = parse_query(
        "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).",
        &mut v,
    )
    .unwrap();
    let result = mcis(&q_pbl, &tcs, &mut v);
    assert_eq!(result.len(), 1);
    let gamma_q = &result[0];
    // Example 24: Q'(N) <- pupil(N, 1, S), ..., learns(N, english).
    let q_prime = parse_query(
        "q(N) :- pupil(N, 1, S), school(S, primary, merano), learns(N, english).",
        &mut v,
    )
    .unwrap();
    assert!(
        is_complete(&q_prime, &tcs),
        "Example 24's query is complete"
    );
    assert!(is_contained_in(&q_prime, gamma_q), "Q' ⊑ γ·Q_pbl");
    assert!(!is_contained_in(gamma_q, &q_prime));
}

/// Theorem 17: the flight query has complete specializations but no
/// maximal one; every k admits strictly more general bounded ones.
#[test]
fn theorem_17_no_maximal_specialization() {
    let mut v = Vocabulary::new();
    let doc = parse_document(
        "compl conn(X, Y) ; conn(Y, Z).
         query q(X) :- conn(X, Y).",
        &mut v,
    )
    .unwrap();
    let q = &doc.queries[0];
    assert!(!is_complete(q, &doc.tcs));

    // The concrete incomplete database from the proof.
    let ideal = parse_instance("conn(a, b). conn(b, c). conn(d, e).", &mut v).unwrap();
    let available = parse_instance("conn(a, b). conn(b, c).", &mut v).unwrap();
    let db = IncompleteDatabase::new(ideal, available).unwrap();
    assert!(db.satisfies_all(&doc.tcs));
    let lost = answers(q, db.ideal()).unwrap();
    let kept = answers(q, db.available()).unwrap();
    assert!(kept.len() < lost.len(), "answer d is lost");

    // Growing k yields strictly more general complete specializations: for
    // each k-MCS there is a (k+2)-MCS strictly above it (the doubled
    // cycle, as in the proof).
    let k1 = k_mcs(q, &doc.tcs, &mut v, KMcsOptions::new(1));
    let k3 = k_mcs(q, &doc.tcs, &mut v, KMcsOptions::new(3));
    for small in &k1.queries {
        let above = k3
            .queries
            .iter()
            .any(|big| is_contained_in(small, big) && !is_contained_in(big, small));
        assert!(above, "every 1-MCS is strictly below some 3-MCS");
    }
}

/// Proposition 13's termination condition: iterating G_C to syntactic
/// stability yields a least fixed point, equivalent to iterating to
/// semantic equivalence.
#[test]
fn proposition_13_termination() {
    let mut v = Vocabulary::new();
    let tcs = school(&mut v);
    let q = parse_query(
        "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).",
        &mut v,
    )
    .unwrap();
    let mut current = q.clone();
    let mut steps = 0;
    loop {
        let next = g_op(&current, &tcs);
        steps += 1;
        if next.same_as(&current) {
            break;
        }
        current = next;
        assert!(steps <= q.size() + 1, "Proposition 12(c) bound violated");
    }
    assert!(is_complete(&current, &tcs));
    assert!(are_equivalent(&current, &mcg(&q, &tcs).unwrap()));
}
