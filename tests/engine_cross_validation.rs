//! Cross-validation of the three engines.
//!
//! The paper ran generalization on a Datalog (ASP) engine and
//! specialization on a Prolog engine; this repository implements both
//! substrates plus a direct relational engine. These tests check that all
//! of them compute the same answers on the same problems:
//!
//! * conjunctive-query evaluation: relational engine vs SLD resolution;
//! * the `T_C` operator: direct vs Datalog encoding (on generated data);
//! * Theorem 3 completeness checking: direct vs an encoding run
//!   *backwards* on the Prolog engine (the `Rⁱ`/`Rᵃ` rules queried as
//!   goals).

use magik::prolog::{KnowledgeBase, SolverConfig};
use magik::workload::paper::school;
use magik::workload::synth::{school_instance, SchoolDataConfig};
use magik::{
    answers, canonical_database, is_complete, parse_query, tc_apply, tc_apply_datalog, Cst,
    DisplayWith, Instance, Query, Term, Vocabulary,
};

/// Renders a constant in Prolog-friendly lowercase form.
fn prolog_cst(c: Cst, vocab: &Vocabulary) -> String {
    match c {
        Cst::Data(sym) => {
            let raw = vocab.name(sym).to_owned();
            format!(
                "c_{}",
                raw.replace(|ch: char| !ch.is_ascii_alphanumeric(), "_")
            )
        }
        Cst::Frozen(v) => format!("f_{}", vocab.var_name(v).to_lowercase()),
    }
}

/// Loads an instance into a Prolog knowledge base as ground facts.
fn load_instance(db: &Instance, vocab: &Vocabulary, suffix: &str, kb_src: &mut String) {
    for fact in db.iter_facts() {
        let args: Vec<String> = fact.args.iter().map(|&c| prolog_cst(c, vocab)).collect();
        kb_src.push_str(&format!(
            "{}{suffix}({}).\n",
            vocab.pred_name(fact.pred),
            args.join(", ")
        ));
    }
}

/// Renders a query body as a Prolog goal list.
fn prolog_goals(q: &Query, vocab: &Vocabulary, suffix: &str) -> String {
    q.body
        .iter()
        .map(|a| {
            let args: Vec<String> = a
                .args
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => format!("V{}", v.index()),
                    Term::Cst(c) => prolog_cst(c, vocab),
                })
                .collect();
            format!("{}{suffix}({})", vocab.pred_name(a.pred), args.join(", "))
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[test]
fn cq_evaluation_agrees_with_sld_resolution() {
    // Evaluate the two running-example queries over synthetic data on both
    // the relational engine and the Prolog engine.
    let w = school();
    let mut vocab = w.vocab.clone();
    let db = school_instance(
        &w,
        &mut vocab,
        SchoolDataConfig {
            schools: 4,
            pupils_per_school: 5,
            learn_prob: 0.5,
            seed: 11,
        },
    );
    let mut kb_src = String::new();
    load_instance(&db, &vocab, "", &mut kb_src);
    let mut kb = KnowledgeBase::new();
    kb.consult(&kb_src).unwrap();

    for q in [&w.q_ppb, &w.q_pbl] {
        let relational = answers(q, &db).unwrap();
        let goals = format!("{}.", prolog_goals(q, &vocab, ""));
        let result = kb.query(&goals).unwrap();
        assert!(result.complete);
        // Distinct head images (SLD enumerates assignments, so dedup).
        let head_var = q.head[0].as_var().unwrap();
        let mut images: Vec<String> = result
            .solutions
            .iter()
            .map(|s| {
                let (_, term) = s
                    .bindings
                    .iter()
                    .find(|(name, _)| name == &format!("V{}", head_var.index()))
                    .expect("head variable bound");
                kb.render(term, &[])
            })
            .collect();
        images.sort();
        images.dedup();
        assert_eq!(
            images.len(),
            relational.len(),
            "engines disagree on {}",
            q.display(&vocab)
        );
    }
}

#[test]
fn tc_operator_agrees_across_engines_on_synthetic_data() {
    let w = school();
    let mut vocab = w.vocab.clone();
    for seed in [1u64, 2, 3] {
        let db = school_instance(
            &w,
            &mut vocab,
            SchoolDataConfig {
                schools: 6,
                pupils_per_school: 8,
                learn_prob: 0.4,
                seed,
            },
        );
        let direct = tc_apply(&w.tcs, &db);
        let datalog = tc_apply_datalog(&w.tcs, &db, &mut vocab);
        assert_eq!(direct, datalog, "seed {seed}");
    }
}

/// Theorem 3 on the Prolog engine: freeze the query, load `Rⁱ` facts,
/// translate each statement into a backward-chainable rule
/// `Rᵃ(s̄) :- Rⁱ(s̄), Gⁱ`, and prove the goal `Bᵃ` (every body atom
/// available). The provability of the frozen body is exactly the
/// completeness condition.
#[test]
fn completeness_check_agrees_with_backward_chaining() {
    let w = school();
    let mut vocab = w.vocab.clone();

    let queries = [
        (w.q_ppb.clone(), true),
        (w.q_pbl.clone(), false),
        (
            parse_query(
                "q3(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, english).",
                &mut vocab,
            )
            .unwrap(),
            true,
        ),
        (
            parse_query("q4(N) :- learns(N, english).", &mut vocab).unwrap(),
            false,
        ),
    ];

    for (q, expected) in queries {
        assert_eq!(is_complete(&q, &w.tcs), expected, "{}", q.display(&vocab));

        // Build the Prolog program: frozen body as R_i facts + TC rules.
        let frozen = canonical_database(&q);
        let mut src = String::new();
        load_instance(&frozen, &vocab, "_i", &mut src);
        for c in w.tcs.statements() {
            let head_args: Vec<String> = c
                .head
                .args
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => format!("V{}", v.index()),
                    Term::Cst(cst) => prolog_cst(cst, &vocab),
                })
                .collect();
            let head_name = vocab.pred_name(c.head.pred);
            let mut rule = format!(
                "{head_name}_a({}) :- {head_name}_i({})",
                head_args.join(", "),
                head_args.join(", ")
            );
            for g in &c.condition {
                let args: Vec<String> = g
                    .args
                    .iter()
                    .map(|&t| match t {
                        Term::Var(v) => format!("V{}", v.index()),
                        Term::Cst(cst) => prolog_cst(cst, &vocab),
                    })
                    .collect();
                rule.push_str(&format!(
                    ", {}_i({})",
                    vocab.pred_name(g.pred),
                    args.join(", ")
                ));
            }
            rule.push_str(".\n");
            src.push_str(&rule);
        }
        let mut kb = KnowledgeBase::new();
        kb.consult(&src).unwrap();

        // Goal: the frozen body, over the _a relations.
        let frozen_body = Query::new(
            q.name,
            q.head.clone(),
            q.body
                .iter()
                .map(|a| {
                    magik::Atom::new(
                        a.pred,
                        a.args
                            .iter()
                            .map(|&t| Term::Cst(magik::relalg::freeze_term(t)))
                            .collect(),
                    )
                })
                .collect(),
        );
        let goal = format!("{}.", prolog_goals(&frozen_body, &vocab, "_a"));
        let result = kb
            .query_with(
                &goal,
                SolverConfig {
                    max_solutions: 1,
                    ..SolverConfig::default()
                },
            )
            .unwrap();
        let provable = !result.solutions.is_empty();
        assert_eq!(
            provable,
            expected,
            "Prolog backward chaining disagrees on {}",
            q.display(&vocab)
        );
    }
}
