//! End-to-end guarantee tests on synthetic scenarios.
//!
//! These are the "does the theory deliver in practice" tests: over many
//! generated incomplete databases that satisfy the statements, the
//! reasoner's outputs must honor their contracts —
//!
//! * a query judged complete never loses an answer;
//! * the MCG always returns a superset of the ideal answers of `Q`;
//! * every MCS returns exactly its ideal answers (publishable counts);
//! * those guarantees survive arbitrary extra facts in the available
//!   state (lossy scenarios), not just minimal ones.

use magik::workload::paper::{school, table1_satisfiable};
use magik::workload::synth::{lossy_scenario, school_instance, SchoolDataConfig};
use magik::{answers, is_complete, k_mcs, mcg, DisplayWith, KMcsOptions};

#[test]
fn guarantees_hold_across_seeds_and_loss_rates() {
    let w = school();
    for seed in 0..5u64 {
        for keep_prob in [0.0, 0.3, 0.8] {
            let mut vocab = w.vocab.clone();
            let ideal = school_instance(
                &w,
                &mut vocab,
                SchoolDataConfig {
                    schools: 6,
                    pupils_per_school: 10,
                    learn_prob: 0.45,
                    seed,
                },
            );
            let db = lossy_scenario(ideal, &w.tcs, keep_prob, seed ^ 0xbeef);
            assert!(db.satisfies_all(&w.tcs));

            // Contract 1: the complete query loses nothing.
            assert!(db.query_complete(&w.q_ppb).unwrap());

            // Contract 2: MCG answers over the available state form a
            // superset of Q's ideal answers.
            let general = mcg(&w.q_pbl, &w.tcs).unwrap();
            let superset = answers(&general, db.available()).unwrap();
            let ideal_answers = answers(&w.q_pbl, db.ideal()).unwrap();
            assert!(
                ideal_answers.is_subset(&superset),
                "seed {seed}, keep {keep_prob}: MCG superset guarantee violated"
            );

            // Contract 3: every MCS answer set is exact.
            let outcome = k_mcs(&w.q_pbl, &w.tcs, &mut vocab, KMcsOptions::new(0));
            for m in &outcome.queries {
                let published = answers(m, db.available()).unwrap();
                let truth = answers(m, db.ideal()).unwrap();
                assert_eq!(
                    published,
                    truth,
                    "seed {seed}, keep {keep_prob}: MCS {} not exact",
                    m.display(&vocab)
                );
            }
        }
    }
}

#[test]
fn satisfiable_table1_mcss_are_exact_on_data() {
    // The ablation workload: k-MCSs of Q_l exist; check their exactness
    // guarantee on concrete class/pupil/learns data.
    let mut w = table1_satisfiable();
    let outcome = k_mcs(&w.q_l, &w.tcs, &mut w.vocab, KMcsOptions::new(3));
    assert!(outcome.complete_search);
    assert!(!outcome.queries.is_empty());

    // Hand-build a small ideal state with classes so the statements bite.
    let v = &mut w.vocab;
    let mut src = String::new();
    for (i, day) in ["halfDay", "fullDay", "halfDay"].iter().enumerate() {
        src.push_str(&format!("school(s{i}, primary, merano).\n"));
        src.push_str(&format!("class(c{i}, s{i}, english, {day}).\n"));
        src.push_str(&format!("pupil(p{i}, c{i}, s{i}).\n"));
        src.push_str(&format!("learns(p{i}, english).\n"));
        src.push_str(&format!("learns(p{i}, german).\n"));
    }
    // A pupil learning only german: Q_l finds them in the ideal state but
    // no statement guarantees the record, so the answer is lost.
    src.push_str("pupil(px, c0, s0).\nlearns(px, german).\n");
    let ideal = magik::parse_instance(&src, v).unwrap();
    let db = magik::semantics::IncompleteDatabase::minimal_completion(ideal, &w.tcs);
    assert!(db.satisfies_all(&w.tcs));
    assert!(
        !db.query_complete(&w.q_l).unwrap(),
        "Q_l itself loses answers"
    );
    for m in &outcome.queries {
        let published = answers(m, db.available()).unwrap();
        let truth = answers(m, db.ideal()).unwrap();
        assert_eq!(published, truth, "MCS {} must be exact", m.display(v));
    }
}

#[test]
fn is_complete_is_a_tight_frontier_on_subqueries() {
    // For the running example: enumerate all subqueries of Q_pbl and
    // check the reasoner's verdicts against brute-force semantics on an
    // adversarial instance (the canonical database of the subquery).
    let w = school();
    for mask in 0u32..8 {
        let mut idx = 0;
        let sub = w.q_pbl.subquery(|_| {
            let keep = mask & (1 << idx) != 0;
            idx += 1;
            keep
        });
        if !sub.is_safe() {
            continue;
        }
        let claimed = is_complete(&sub, &w.tcs);
        let ideal = magik::canonical_database(&sub);
        let db = magik::semantics::IncompleteDatabase::minimal_completion(ideal, &w.tcs);
        let actual = db.query_complete(&sub).unwrap();
        // The canonical pair is the hardest case: verdicts must coincide.
        assert_eq!(claimed, actual, "mask {mask}");
    }
}
