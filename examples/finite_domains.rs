//! Finite-domain constraints — the paper's future-work extension.
//!
//! Two statements say pupil data is complete for half-day classes and
//! for full-day classes. Neither covers a *generic* class — but if the
//! day type can only ever be `halfDay` or `fullDay`, the two statements
//! jointly cover everything. Declaring that finite domain turns an
//! incomplete query into a complete one, by case analysis (the approach
//! the authors implemented on a disjunctive ASP solver in their CIKM'15
//! follow-up).
//!
//! Run with: `cargo run --example finite_domains`

use magik::{
    is_complete, is_complete_under, mcg, mcg_under, parse_document, DisplayWith, Vocabulary,
};

fn main() {
    let mut vocab = Vocabulary::new();
    let doc = parse_document(
        "domain class(_, _, _, D) in {halfDay, fullDay}.

         compl class(C, S, L, D) ; true.
         compl pupil(N, C, S) ; class(C, S, L, halfDay).
         compl pupil(N, C, S) ; class(C, S, L, fullDay).

         query q(N) :- pupil(N, C, S), class(C, S, L, D).",
        &mut vocab,
    )
    .expect("document parses");
    let q = &doc.queries[0];

    println!("Statements:");
    for c in doc.tcs.statements() {
        println!("  {}", c.display(&vocab));
    }
    println!("Constraint:");
    for d in doc.constraints.domains() {
        println!("  {}", d.display(&vocab));
    }
    println!("\nQuery: {}\n", q.display(&vocab));

    // Without the constraint, the generic day value matches neither
    // conditioned statement: the query is judged incomplete, and the only
    // complete generalization drops the pupil atom — which makes q(N)
    // unsafe, so no MCG exists at all.
    println!(
        "classic check:          {}",
        verdict(is_complete(q, &doc.tcs))
    );
    println!(
        "classic MCG:            {}",
        mcg(q, &doc.tcs).map_or("none".to_owned(), |m| m.display(&vocab).to_string())
    );

    // With the constraint, the case analysis D = halfDay / D = fullDay
    // finds a covering statement in each case.
    println!(
        "with domain constraint: {}",
        verdict(is_complete_under(q, &doc.tcs, &doc.constraints))
    );
    println!(
        "constrained MCG:        {}",
        mcg_under(q, &doc.tcs, &doc.constraints)
            .map_or("none".to_owned(), |m| m.display(&vocab).to_string())
    );
}

fn verdict(complete: bool) -> &'static str {
    if complete {
        "COMPLETE"
    } else {
        "INCOMPLETE"
    }
}
