//! A tour of the two inference substrates the paper's implementation
//! delegated to external systems — here implemented from scratch.
//!
//! * **Forward chaining** (the dlv role): the Datalog engine runs the
//!   Section 5 `Rⁱ`/`Rᵃ` encoding of the statements, plus a stratified
//!   negation query computing which parts of the frozen query are *not*
//!   guaranteed.
//! * **Backward chaining** (the SWI-Prolog role): the SLD engine proves
//!   the same completeness goal top-down, and uses negation as failure
//!   to name the missing atoms.
//!
//! Both agree with the relational implementation of Theorem 3.
//!
//! Run with: `cargo run --example engines_tour`

use magik::datalog::{Program, Rule};
use magik::prolog::KnowledgeBase;
use magik::workload::paper::school;
use magik::{
    canonical_database, is_complete, tc_encoding, Atom, DisplayWith, Fact, Instance, Term,
};

fn main() {
    let w = school();
    let mut vocab = w.vocab.clone();
    let q = w.q_pbl.clone();
    println!("Query: {}", q.display(&vocab));
    println!(
        "Relational Theorem 3 check: {}\n",
        if is_complete(&q, &w.tcs) {
            "COMPLETE"
        } else {
            "INCOMPLETE"
        }
    );

    // ---------- Forward chaining on the Datalog engine ----------
    let frozen = canonical_database(&q);
    let (program, ideal_preds, avail_preds) = tc_encoding(&w.tcs, &mut vocab);
    println!("Section 5 encoding as Datalog rules:");
    for rule in program.rules() {
        println!("  {}", rule.display(&vocab));
    }
    // Load D_Q as R^i facts and add a stratified-negation rule per
    // relation: missing@R(args) :- R^i(args), not R^a(args).
    let mut edb = Instance::new();
    for fact in frozen.iter_facts() {
        edb.insert(Fact::new(ideal_preds[&fact.pred], fact.args));
    }
    let mut rules = program.rules().to_vec();
    let mut missing_preds = Vec::new();
    for (&orig, &pi) in &ideal_preds {
        let pa = avail_preds[&orig];
        let arity = vocab.arity(orig);
        let missing = vocab.pred(&format!("missing@{}", vocab.pred_name(orig)), arity);
        missing_preds.push(missing);
        let args: Vec<Term> = (0..arity)
            .map(|i| Term::Var(vocab.var(&format!("M{i}"))))
            .collect();
        rules.push(Rule::with_negation(
            Atom::new(missing, args.clone()),
            vec![Atom::new(pi, args.clone())],
            vec![Atom::new(pa, args)],
        ));
    }
    let program = Program::new(rules).expect("encoding plus negation is stratified");
    println!(
        "\nStratified program: {} strata, {} rules",
        program.num_strata(),
        program.rules().len()
    );
    let model = program.eval_semi_naive(&edb).model;
    println!("Frozen atoms NOT guaranteed by the statements (forward chaining):");
    for &mp in &missing_preds {
        if let Some(rel) = model.relation(mp) {
            for tuple in rel.iter() {
                println!(
                    "  {}{}",
                    vocab.pred_name(mp),
                    tuple.to_vec().display(&vocab)
                );
            }
        }
    }

    // ---------- Backward chaining on the Prolog engine ----------
    // The same statements as Horn clauses over _i/_a relations; the
    // completeness goal is the frozen body over the _a relations.
    let mut src = String::new();
    for fact in frozen.iter_facts() {
        let args: Vec<String> = fact
            .args
            .iter()
            .map(|c| format!("k_{}", c.display(&vocab).to_string().replace('\'', "f")))
            .collect();
        src.push_str(&format!(
            "{}_i({}).\n",
            vocab.pred_name(fact.pred),
            args.join(", ")
        ));
    }
    for c in w.tcs.statements() {
        let atom_str = |a: &Atom, suffix: &str| {
            let args: Vec<String> = a
                .args
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => format!("V{}", v.index()),
                    Term::Cst(cst) => format!("k_{}", cst.display(&vocab)),
                })
                .collect();
            format!("{}{suffix}({})", vocab.pred_name(a.pred), args.join(", "))
        };
        let mut rule = format!("{} :- {}", atom_str(&c.head, "_a"), atom_str(&c.head, "_i"));
        for g in &c.condition {
            rule.push_str(&format!(", {}", atom_str(g, "_i")));
        }
        src.push_str(&rule);
        src.push_str(".\n");
    }
    let mut kb = KnowledgeBase::new();
    kb.consult(&src).expect("generated program parses");
    // Per-atom diagnosis with negation as failure.
    println!("\nBackward chaining diagnosis (negation as failure):");
    for atom in &q.body {
        let frozen_atom: Vec<String> = atom
            .args
            .iter()
            .map(|&t| {
                format!(
                    "k_{}",
                    magik::relalg::freeze_term(t)
                        .display(&vocab)
                        .to_string()
                        .replace('\'', "f")
                )
            })
            .collect();
        let goal = format!(
            "{}_a({}).",
            vocab.pred_name(atom.pred),
            frozen_atom.join(", ")
        );
        let provable = !kb.query(&goal).unwrap().solutions.is_empty();
        println!(
            "  {} {}",
            if provable { "+" } else { "-" },
            atom.display(&vocab)
        );
    }
}
