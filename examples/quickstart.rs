//! Quickstart: the paper's running example, end to end.
//!
//! Declares the "schoolBolzano" completeness statements, checks two
//! queries, and computes the best complete approximations of the
//! incomplete one from above (MCG) and from below (MCS).
//!
//! Run with: `cargo run --example quickstart`

use magik::{is_complete, k_mcs, mcg, parse_document, DisplayWith, KMcsOptions, Vocabulary};

fn main() {
    let mut vocab = Vocabulary::new();
    let doc = parse_document(
        "% Which parts of the database are complete?
         compl school(S, primary, D) ; true.                                 % all primary schools
         compl pupil(N, C, S) ; school(S, T, merano).                        % all pupils in merano
         compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).   % all English learners at primary schools

         % Q_ppb: pupils at a primary school in merano.
         query q_ppb(N) :- pupil(N, C, S), school(S, primary, merano).

         % Q_pbl: ... that additionally learn some language.
         query q_pbl(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).",
        &mut vocab,
    )
    .expect("the example document parses");

    println!("Table-completeness statements:");
    for c in doc.tcs.statements() {
        println!("  {}", c.display(&vocab));
    }
    println!();

    for q in &doc.queries {
        let verdict = if is_complete(q, &doc.tcs) {
            "COMPLETE"
        } else {
            "INCOMPLETE"
        };
        println!("{}\n  => {verdict}", q.display(&vocab));
    }
    println!();

    // Q_pbl is incomplete; approximate it.
    let q = &doc.queries[1];

    // From above: the minimal complete generalization. Every ideal answer
    // of Q is an answer of the MCG, so nothing can be missed when
    // searching with it.
    match mcg(q, &doc.tcs) {
        Some(general) => println!(
            "MCG (best complete query containing Q):\n  {}",
            general.display(&vocab)
        ),
        None => println!("Q has no complete generalization"),
    }
    println!();

    // From below: maximal complete specializations. Every answer the
    // specialization returns is guaranteed to be a correct, final answer
    // of Q — safe to publish as partial statistics.
    let outcome = k_mcs(q, &doc.tcs, &mut vocab, KMcsOptions::new(0));
    println!("MCSs within |Q| atoms (k = 0):");
    for m in &outcome.queries {
        println!("  {}", m.display(&vocab));
    }
    println!(
        "\n(search: {} extensions, {} unification calls, {} candidates)",
        outcome.stats.extensions, outcome.stats.unify_calls, outcome.stats.candidates
    );
}
