//! The flight-network example of Theorem 17: a cyclic statement set under
//! which a query has complete specializations but **no maximal** one.
//!
//! The statement `Compl(conn(X, Y); conn(Y, Z))` says: the database is
//! complete for every direct connection that can be extended by another
//! hop. The query asks for cities with an outgoing flight. Round trips of
//! growing length are ever-more-general complete specializations — the
//! chain never tops out, so k-MCS search is the right tool: it returns the
//! maximal complete specializations within a size budget.
//!
//! Run with: `cargo run --example flight_network`

use magik::workload::paper::flight;
use magik::{
    answers, is_complete, k_mcs, mcg, semantics::IncompleteDatabase, tc_apply, DisplayWith, Fact,
    Instance, KMcsOptions,
};

fn main() {
    let w = flight();
    let mut vocab = w.vocab.clone();

    println!("Statement: {}", w.tcs.statements()[0].display(&vocab));
    println!("Query:     {}", w.q.display(&vocab));
    println!("Acyclic:   {}\n", w.tcs.is_acyclic());

    // --- A concrete incomplete database (the one from the paper's proof).
    let mut ideal = Instance::new();
    for (a, b) in [("a", "b"), ("b", "c"), ("d", "e")] {
        ideal.insert(Fact::new(w.conn, vec![vocab.cst(a), vocab.cst(b)]));
    }
    let available = tc_apply(&w.tcs, &ideal);
    let db = IncompleteDatabase::new(ideal, available).unwrap();
    println!("Ideal state:     {}", db.ideal().display(&vocab));
    println!("Available state: {}", db.available().display(&vocab));
    println!(
        "Q over ideal:     {:?}",
        answers(&w.q, db.ideal())
            .unwrap()
            .iter()
            .map(|t| t[0].display(&vocab).to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "Q over available: {:?}",
        answers(&w.q, db.available())
            .unwrap()
            .iter()
            .map(|t| t[0].display(&vocab).to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "=> the answer `d` is lost; Q is {}\n",
        if is_complete(&w.q, &w.tcs) {
            "complete (?!)"
        } else {
            "incomplete, as Theorem 17 predicts"
        }
    );

    // --- No complete generalization exists either (G_C drops the only atom).
    println!(
        "MCG: {:?}\n",
        mcg(&w.q, &w.tcs).map(|m| m.display(&vocab).to_string())
    );

    // --- Bounded maximal complete specializations for growing k.
    for k in 0..=3 {
        let outcome = k_mcs(&w.q, &w.tcs, &mut vocab, KMcsOptions::new(k));
        println!(
            "k = {k}: {} maximal complete specialization(s) within {} atoms",
            outcome.queries.len(),
            w.q.size() + k
        );
        for m in &outcome.queries {
            println!("    {}", m.display(&vocab));
        }
    }
    println!(
        "\nEach k admits a round trip of length k+1 (plus incomparable \
         'lasso' shapes); no specialization is maximal overall — exactly \
         the Theorem 17 phenomenon."
    );
}
