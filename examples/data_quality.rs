//! A data-steward workflow: author completeness metadata, lint it,
//! simulate the exposure, and publish guarded numbers.
//!
//! This is the operational loop the MAGIK demo pitched to school-board
//! administrators, run end to end on synthetic data:
//!
//! 1. write table-completeness statements, run the **linter** to catch
//!    authoring mistakes (redundant, self-conditioned or dead-end
//!    statements);
//! 2. **simulate** which query answers are at risk if only the guaranteed
//!    data arrives;
//! 3. **publish** counts with certainty guarantees instead of raw counts.
//!
//! Run with: `cargo run --example data_quality`

use magik::workload::paper::school;
use magik::workload::synth::{lossy_scenario, school_instance, SchoolDataConfig};
use magik::{
    classify_answers, count_bounds, lint, parse_document, publishable_counts, tc_apply,
    DisplayWith, Vocabulary,
};

fn main() {
    // --- Step 1: lint a draft statement set with typical mistakes.
    let mut vocab = Vocabulary::new();
    let draft = parse_document(
        "compl school(S, T, D) ; true.
         compl school(S, primary, D) ; true.                 % subsumed by the first
         compl pupil(N, C, S) ; enrollment(N, S).            % enrollment heads no statement
         compl conn(X, Y) ; conn(Y, Z).                      % self-conditioned",
        &mut vocab,
    )
    .expect("draft parses");
    println!("== Linting the draft statement set ==");
    for l in lint(&draft.tcs) {
        println!("  warning: {}", l.render(&draft.tcs, &vocab));
    }

    // --- Step 2: simulate exposure with the real (clean) statement set.
    let w = school();
    let mut vocab = w.vocab.clone();
    assert!(lint(&w.tcs).is_empty(), "the paper's set lints clean");
    let ideal = school_instance(
        &w,
        &mut vocab,
        SchoolDataConfig {
            schools: 8,
            pupils_per_school: 25,
            learn_prob: 0.35,
            seed: 99,
        },
    );
    let guaranteed = tc_apply(&w.tcs, &ideal);
    println!("\n== Simulation: what do the statements actually guarantee? ==");
    println!(
        "if only guaranteed data arrives: {} of {} facts",
        guaranteed.len(),
        ideal.len()
    );

    // --- Step 3: publish numbers with guarantees over a realistic
    // partially loaded database.
    let db = lossy_scenario(ideal, &w.tcs, 0.5, 7);
    println!(
        "\n== Publishing with guarantees (available: {} facts) ==",
        db.available().len()
    );
    for q in [&w.q_ppb, &w.q_pbl] {
        println!("query {}", q.display(&vocab));
        let report = classify_answers(q, &w.tcs, db.available()).unwrap();
        let bounds = count_bounds(q, &w.tcs, db.available()).unwrap();
        match (bounds.exact, bounds.upper) {
            (true, _) => println!(
                "  publish: exactly {} answers (query is complete)",
                bounds.lower
            ),
            (false, Some(u)) => println!(
                "  publish: between {} and {u} answers ({} certain, {} possible)",
                bounds.lower,
                report.certain.len(),
                report
                    .possible
                    .as_ref()
                    .map_or(0, std::collections::BTreeSet::len)
            ),
            (false, None) => println!("  publish: at least {} answers", bounds.lower),
        }
        for row in publishable_counts(q, &w.tcs, &mut vocab, db.available(), 0).unwrap() {
            println!(
                "  final sub-statistic: |{}| = {}",
                row.query.display(&vocab),
                row.count
            );
        }
    }

    // The guarantees are real: check them against the (normally unknown)
    // ideal state.
    let truth_ppb = magik::answers(&w.q_ppb, db.ideal()).unwrap().len();
    let truth_pbl = magik::answers(&w.q_pbl, db.ideal()).unwrap().len();
    let b_ppb = count_bounds(&w.q_ppb, &w.tcs, db.available()).unwrap();
    let b_pbl = count_bounds(&w.q_pbl, &w.tcs, db.available()).unwrap();
    assert_eq!(b_ppb.lower, truth_ppb);
    assert!(b_pbl.lower <= truth_pbl && truth_pbl <= b_pbl.upper.unwrap());
    println!("\n(checked against the hidden ideal state: all published guarantees hold)");
}
