//! Publishing guaranteed-correct partial statistics over an incomplete
//! database — the motivating scenario from the paper's introduction.
//!
//! A statistics office wants to publish the number of language learners
//! per primary school in merano. Data collection is still running, so
//! counts over the raw query would under-report. But the English-learner
//! records are already complete — so the *maximal complete specialization*
//! of the query can be published now, with a correctness guarantee.
//!
//! Run with: `cargo run --example statistics_publishing`

use magik::workload::paper::school;
use magik::workload::synth::{lossy_scenario, school_instance, SchoolDataConfig};
use magik::{answers, is_complete, k_mcs, mcg, DisplayWith, KMcsOptions};

fn main() {
    let w = school();
    let mut vocab = w.vocab.clone();

    // Generate a synthetic province: the *ideal* state nobody has in full.
    let ideal = school_instance(
        &w,
        &mut vocab,
        SchoolDataConfig {
            schools: 12,
            pupils_per_school: 30,
            learn_prob: 0.35,
            seed: 2013,
        },
    );
    // The available state satisfies the completeness statements, plus some
    // extra records that happen to be in already.
    let db = lossy_scenario(ideal, &w.tcs, 0.6, 42);
    println!(
        "ideal state: {} facts, available state: {} facts\n",
        db.ideal().len(),
        db.available().len()
    );

    let q = &w.q_pbl;
    println!("Statistic of interest: |{}|", q.display(&vocab));

    let ideal_count = answers(q, db.ideal()).unwrap().len();
    let avail_count = answers(q, db.available()).unwrap().len();
    println!("  true value (unknown in practice): {ideal_count}");
    println!("  naive count over available data:  {avail_count}  <-- under-reports!");
    assert!(!is_complete(q, &w.tcs));

    // The maximal complete specialization: guaranteed-correct partial
    // statistics (here: restricted to English learners).
    let outcome = k_mcs(q, &w.tcs, &mut vocab, KMcsOptions::new(0));
    println!("\nPublishable partial statistics (maximal complete specializations):");
    for m in &outcome.queries {
        let published = answers(m, db.available()).unwrap().len();
        let truth = answers(m, db.ideal()).unwrap().len();
        println!(
            "  |{}| = {published} (true value {truth}) {}",
            m.display(&vocab),
            if published == truth {
                "== guaranteed correct"
            } else {
                "!! guarantee violated, this is a bug"
            }
        );
        assert_eq!(published, truth, "completeness guarantees exact counts");
    }

    // The dual use case: a parent searches for a specific pupil. The MCG
    // guarantees no answer of Q is missed.
    let general = mcg(q, &w.tcs).expect("the MCG exists");
    let superset = answers(&general, db.available()).unwrap();
    let ideal_answers = answers(q, db.ideal()).unwrap();
    println!(
        "\nSearch use case: MCG {} returns {} names — a guaranteed superset \
         of the {} true answers of Q",
        general.display(&vocab),
        superset.len(),
        ideal_answers.len()
    );
    assert!(ideal_answers.is_subset(&superset));
}
